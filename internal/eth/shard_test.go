package eth

import (
	"math/big"
	"testing"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
)

func TestTxConflictKeysTable(t *testing.T) {
	sender := chain.AddressFromBytes([]byte("sender"))
	contract := chain.AddressFromBytes([]byte("contract"))
	cases := []struct {
		name string
		tx   *Tx
		want []chain.ConflictKey
	}{
		{
			name: "call keys sender account and target account+contract",
			tx:   &Tx{From: sender, To: &contract},
			want: []chain.ConflictKey{
				chain.AccountKey(sender),
				chain.AccountKey(contract),
				chain.ContractKey(contract),
			},
		},
		{
			name: "deploy keys the deterministic contract address",
			tx:   &Tx{From: sender, Nonce: 3},
			want: []chain.ConflictKey{
				chain.AccountKey(sender),
				chain.AccountKey(chain.ContractAddress(sender, 3)),
				chain.ContractKey(chain.ContractAddress(sender, 3)),
			},
		},
		{
			name: "zero target still yields distinct account and contract keys",
			tx:   &Tx{From: sender, To: &chain.Address{}},
			want: []chain.ConflictKey{
				chain.AccountKey(sender),
				chain.AccountKey(chain.Address{}),
				chain.ContractKey(chain.Address{}),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.tx.ConflictKeys()
			if len(got) != len(tc.want) {
				t.Fatalf("got %d keys, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("key[%d] = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
	// Cross-derivation properties the partitioner relies on.
	a := &Tx{From: sender, To: &contract}
	b := &Tx{From: chain.AddressFromBytes([]byte("other")), To: &contract}
	if a.ConflictKeys()[2] != b.ConflictKeys()[2] {
		t.Fatal("same target contract from different senders must share a key")
	}
	other := chain.AddressFromBytes([]byte("elsewhere"))
	c1 := &Tx{From: sender, To: &contract}
	c2 := &Tx{From: sender, To: &other}
	if c1.ConflictKeys()[0] != c2.ConflictKeys()[0] {
		t.Fatal("same sender across different areas must share a key")
	}
}

func TestShardStateOverlay(t *testing.T) {
	base := newState()
	alice := chain.AddressFromBytes([]byte("alice"))
	bob := chain.AddressFromBytes([]byte("bob"))
	key := chain.Hash32{1}
	base.AddBalance(alice, big.NewInt(100))
	base.SetNonce(alice, 5)
	base.SetCode(bob, []byte{0x01})
	base.SetStorage(bob, key, chain.Hash32{9})

	ov := newShardState(base)
	if ov.GetBalance(alice).Int64() != 100 || ov.Nonce(alice) != 5 {
		t.Fatal("overlay must read through to base")
	}
	ov.SubBalance(alice, big.NewInt(30))
	ov.SetNonce(alice, 6)
	ov.SetStorage(bob, key, chain.Hash32{})
	ov.SetStorage(alice, key, chain.Hash32{7})
	ov.DeleteCode(bob)
	if base.GetBalance(alice).Int64() != 100 {
		t.Fatal("overlay writes must not touch base before commit")
	}
	if _, ok := base.Code(bob); !ok {
		t.Fatal("base code deleted before commit")
	}
	if ov.GetBalance(alice).Int64() != 70 || ov.Nonce(alice) != 6 {
		t.Fatal("overlay must serve its own writes")
	}
	if ov.GetStorage(bob, key) != (chain.Hash32{}) {
		t.Fatal("overlay must serve a zero storage overwrite")
	}
	if _, ok := ov.Code(bob); ok {
		t.Fatal("overlay must hide deleted code")
	}
	if ov.AccountExists(bob) {
		t.Fatal("bob had only code; deletion removes the account")
	}

	ov.commit()
	if base.GetBalance(alice).Int64() != 70 || base.Nonce(alice) != 6 {
		t.Fatal("commit must fold balances and nonces into base")
	}
	if base.kv.Has(storKey(bob, key)) {
		t.Fatal("commit of a zero write must delete the base slot")
	}
	if base.GetStorage(alice, key) != (chain.Hash32{7}) {
		t.Fatal("commit must fold storage writes into base")
	}
	if _, ok := base.Code(bob); ok {
		t.Fatal("commit must fold code deletion into base")
	}
}

// counterCode increments a per-caller storage slot on every call — enough
// contract state to make cross-shard divergence visible.
func counterCode(t *testing.T) []byte {
	t.Helper()
	a := evm.NewAssembler()
	a.Op(evm.CALLER).Op(evm.SLOAD).PushUint(1).Op(evm.ADD)
	a.Op(evm.CALLER).Op(evm.SSTORE).Op(evm.STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// runShardedWorkload drives a mixed workload — per-area contract calls plus
// peer-to-peer transfers — through a chain configured with the given shard
// count and returns the chain and its end-state digest. Everything about
// the workload is deterministic, so any digest difference across shard
// counts is a sharding bug.
func runShardedWorkload(t *testing.T, shards int) *Chain {
	t.Helper()
	cfg := Goerli()
	cfg.CongestionMeanGas = 1_000_000
	cfg.SpikeProb = 0
	c := NewChain(cfg, 1234)
	c.SetShards(shards)
	cl := NewClient(c)

	deployer := c.NewAccount(eth(10))
	code := counterCode(t)
	const areas = 4
	var contracts []chain.Address
	for i := 0; i < areas; i++ {
		_, addr, err := cl.Deploy(deployer, code, nil, nil, 300000)
		if err != nil {
			t.Fatal(err)
		}
		contracts = append(contracts, addr)
	}

	const users = 16
	accts := make([]*Account, users)
	nonces := make([]uint64, users)
	for i := range accts {
		accts[i] = c.NewAccount(eth(1))
	}

	tip := big.NewInt(2_000_000_000)
	for round := 0; round < 10; round++ {
		maxFee := new(big.Int).Add(new(big.Int).Mul(c.BaseFee(), big.NewInt(2)), tip)
		var txs []*Tx
		for ui, u := range accts {
			to := contracts[ui%areas]
			call := &Tx{
				From: u.Address, Nonce: nonces[ui], To: &to,
				Value: big.NewInt(0), GasLimit: 90000,
				MaxFee: maxFee, MaxTip: tip,
			}
			call.Sign(u)
			nonces[ui]++
			txs = append(txs, call)
			if round%2 == 0 {
				// Pair transfers keep components small but non-trivial.
				peer := accts[ui^1].Address
				pay := &Tx{
					From: u.Address, Nonce: nonces[ui], To: &peer,
					Value: big.NewInt(1000), GasLimit: 21000,
					MaxFee: maxFee, MaxTip: tip,
				}
				pay.Sign(u)
				nonces[ui]++
				txs = append(txs, pay)
			}
		}
		_, errs := c.SubmitBatch(txs)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d tx %d: %v", round, i, err)
			}
		}
		c.Step()
	}
	for i := 0; i < 20 && c.PendingCount() > 0; i++ {
		c.Step()
	}
	if c.PendingCount() != 0 {
		t.Fatalf("%d transactions never included", c.PendingCount())
	}
	return c
}

func TestShardedBlockBitIdentity(t *testing.T) {
	ref := runShardedWorkload(t, 1)
	refDigest := ref.Digest()
	for _, shards := range []int{2, 3, 4, 8} {
		c := runShardedWorkload(t, shards)
		if len(c.blocks) != len(ref.blocks) {
			t.Fatalf("shards=%d: %d blocks vs %d serial", shards, len(c.blocks), len(ref.blocks))
		}
		for i := range ref.blocks {
			if c.blocks[i].Hash != ref.blocks[i].Hash {
				t.Fatalf("shards=%d: block %d hash diverges", shards, i)
			}
			if len(c.blocks[i].TxHashes) != len(ref.blocks[i].TxHashes) {
				t.Fatalf("shards=%d: block %d tx count diverges", shards, i)
			}
		}
		if d := c.Digest(); d != refDigest {
			t.Fatalf("shards=%d: state digest diverges from serial run", shards)
		}
	}
}

func TestShardStatsRecordParallelWork(t *testing.T) {
	c := runShardedWorkload(t, 4)
	stats := c.ShardStats()
	if stats == nil {
		t.Fatal("stats must exist after SetShards")
	}
	if stats.ParallelBatches == 0 {
		t.Fatal("workload with disjoint areas must fan out at least once")
	}
	busy := 0
	for _, n := range stats.Txs {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shards did work, want >= 2 (txs=%v)", busy, stats.Txs)
	}
}

func TestSubmitBatchMatchesSerialSubmit(t *testing.T) {
	run := func(batch bool) *Chain {
		c := newTestChain(t)
		c.SetShards(4)
		accts := make([]*Account, 6)
		for i := range accts {
			accts[i] = c.NewAccount(eth(1))
		}
		tip := big.NewInt(2_000_000_000)
		maxFee := new(big.Int).Add(new(big.Int).Mul(c.BaseFee(), big.NewInt(2)), tip)
		var txs []*Tx
		for i, u := range accts {
			to := accts[(i+1)%len(accts)].Address
			tx := &Tx{
				From: u.Address, Nonce: 0, To: &to,
				Value: big.NewInt(500), GasLimit: 21000,
				MaxFee: maxFee, MaxTip: tip,
			}
			tx.Sign(u)
			txs = append(txs, tx)
		}
		if batch {
			_, errs := c.SubmitBatch(txs)
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, tx := range txs {
				if _, err := c.Submit(tx); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.Step()
		return c
	}
	if run(true).Digest() != run(false).Digest() {
		t.Fatal("batched submission must be indistinguishable from serial submission")
	}
}

func TestSubmitBatchReportsPerTxErrors(t *testing.T) {
	c := newTestChain(t)
	c.SetShards(2)
	alice := c.NewAccount(eth(1))
	bob := chain.AddressFromBytes([]byte("bob"))
	tip := big.NewInt(2_000_000_000)
	maxFee := new(big.Int).Add(c.BaseFee(), tip)
	good := &Tx{From: alice.Address, Nonce: 0, To: &bob, Value: big.NewInt(1),
		GasLimit: 21000, MaxFee: maxFee, MaxTip: tip}
	good.Sign(alice)
	bad := &Tx{From: alice.Address, Nonce: 1, To: &bob, Value: big.NewInt(1),
		GasLimit: 21000, MaxFee: maxFee, MaxTip: tip}
	bad.Sign(alice)
	bad.Sig[0] ^= 0xff
	hashes, errs := c.SubmitBatch([]*Tx{good, bad})
	if errs[0] != nil {
		t.Fatalf("good tx rejected: %v", errs[0])
	}
	if hashes[0] == (chain.Hash32{}) {
		t.Fatal("good tx must get a hash")
	}
	if errs[1] == nil {
		t.Fatal("tampered signature must be rejected")
	}
}
