package eth

import (
	"bytes"
	"encoding/binary"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
	"agnopol/internal/polcrypto"
)

// Sharded block application. Selected transactions are partitioned into
// conflict components (chain.Partition over each transaction's
// ConflictKeys), components are packed onto shards, and each shard executes
// its components serially against a copy-on-write overlay of the world
// state while shards run concurrently. Overlays touch disjoint state by
// construction, so committing them and then applying the serialized
// effects (proposer tip, burn tally, explorer rows) in canonical order
// yields a block bit-identical to the serial path at any shard count —
// TestShardedBlockBitIdentity is the gate.

// ConflictKeys names the state a transaction may touch: its sender's
// account (nonce + balance), the target's account (value credit) and the
// target contract's code and storage. For deployments the target is the
// deterministic contract address. Beneficiaries named only in calldata
// (e.g. a wallet argument the contract pays out to) are not derivable
// without executing, so they carry no key; in the PoL workloads such
// payouts always come from the area contract already in the component, and
// the bit-identity tests verify the assumption.
func (tx *Tx) ConflictKeys() []chain.ConflictKey {
	var target chain.Address
	if tx.To == nil {
		target = chain.ContractAddress(tx.From, tx.Nonce)
	} else {
		target = *tx.To
	}
	return []chain.ConflictKey{
		chain.AccountKey(tx.From),
		chain.AccountKey(target),
		chain.ContractKey(target),
	}
}

// execState is the world-state surface transaction execution needs: the
// EVM's StateDB plus nonce and code management. Both the canonical state
// and the per-shard overlays implement it.
type execState interface {
	evm.StateDB
	Nonce(chain.Address) uint64
	SetNonce(chain.Address, uint64)
	Code(chain.Address) ([]byte, bool)
	SetCode(chain.Address, []byte)
	DeleteCode(chain.Address)
}

var (
	_ execState = (*state)(nil)
	_ execState = (*shardState)(nil)
)

// storageSlot keys one contract storage word in a shard overlay.
type storageSlot struct {
	addr chain.Address
	key  chain.Hash32
}

// shardState is a copy-on-write overlay over the canonical state: reads
// fall through to the base, writes stay local until commit. A zero storage
// write is recorded (not elided) so commit can apply the base's
// delete-on-zero rule.
type shardState struct {
	base     *state
	balances map[chain.Address]*big.Int
	nonces   map[chain.Address]uint64
	storage  map[storageSlot]chain.Hash32
	code     map[chain.Address][]byte
	codeDel  map[chain.Address]bool
}

func newShardState(base *state) *shardState {
	return &shardState{
		base:     base,
		balances: make(map[chain.Address]*big.Int),
		nonces:   make(map[chain.Address]uint64),
		storage:  make(map[storageSlot]chain.Hash32),
		code:     make(map[chain.Address][]byte),
		codeDel:  make(map[chain.Address]bool),
	}
}

func (s *shardState) balanceForWrite(a chain.Address) *big.Int {
	if b, ok := s.balances[a]; ok {
		return b
	}
	b := new(big.Int)
	if base, ok := s.base.balances[a]; ok {
		b.Set(base)
	}
	s.balances[a] = b
	return b
}

func (s *shardState) GetBalance(a chain.Address) *big.Int {
	if b, ok := s.balances[a]; ok {
		return new(big.Int).Set(b)
	}
	return s.base.GetBalance(a)
}

func (s *shardState) AddBalance(a chain.Address, v *big.Int) {
	b := s.balanceForWrite(a)
	b.Add(b, v)
}

func (s *shardState) SubBalance(a chain.Address, v *big.Int) {
	b := s.balanceForWrite(a)
	b.Sub(b, v)
}

func (s *shardState) GetStorage(addr chain.Address, key chain.Hash32) chain.Hash32 {
	if v, ok := s.storage[storageSlot{addr, key}]; ok {
		return v
	}
	return s.base.GetStorage(addr, key)
}

func (s *shardState) SetStorage(addr chain.Address, key, value chain.Hash32) {
	s.storage[storageSlot{addr, key}] = value
}

func (s *shardState) AccountExists(a chain.Address) bool {
	if _, ok := s.balances[a]; ok {
		return true
	}
	if _, ok := s.code[a]; ok {
		return true
	}
	if s.codeDel[a] {
		_, ok := s.base.balances[a]
		return ok
	}
	return s.base.AccountExists(a)
}

func (s *shardState) Nonce(a chain.Address) uint64 {
	if n, ok := s.nonces[a]; ok {
		return n
	}
	return s.base.nonces[a]
}

func (s *shardState) SetNonce(a chain.Address, n uint64) { s.nonces[a] = n }

func (s *shardState) Code(a chain.Address) ([]byte, bool) {
	if c, ok := s.code[a]; ok {
		return c, true
	}
	if s.codeDel[a] {
		return nil, false
	}
	return s.base.Code(a)
}

func (s *shardState) SetCode(a chain.Address, code []byte) {
	s.code[a] = code
	delete(s.codeDel, a)
}

func (s *shardState) DeleteCode(a chain.Address) {
	delete(s.code, a)
	s.codeDel[a] = true
}

// commit folds the overlay into the base state. Overlays from different
// shards hold disjoint key sets, so commit order across shards does not
// matter; within an overlay every key holds its final value, so map
// iteration order does not matter either.
func (s *shardState) commit() {
	for a, b := range s.balances {
		s.base.balances[a] = b
	}
	for a, n := range s.nonces {
		s.base.nonces[a] = n
	}
	for slot, v := range s.storage {
		s.base.SetStorage(slot.addr, slot.key, v)
	}
	for a := range s.codeDel {
		delete(s.base.code, a)
	}
	for a, c := range s.code {
		s.base.code[a] = c
	}
}

// SetShards configures how many execution shards Step may fan out to; n <= 1
// keeps the serial path. The setting changes scheduling only — block
// contents are identical at every value.
func (c *Chain) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	c.shards = n
	c.shardStats = chain.NewShardStats(n)
}

// Shards returns the configured shard count.
func (c *Chain) Shards() int {
	if c.shards < 1 {
		return 1
	}
	return c.shards
}

// ShardStats returns a copy of the per-shard execution tallies accumulated
// since SetShards, or nil when sharding was never configured.
func (c *Chain) ShardStats() *chain.ShardStats {
	if c.shardStats == nil {
		return nil
	}
	cp := chain.NewShardStats(len(c.shardStats.Txs))
	copy(cp.Txs, c.shardStats.Txs)
	copy(cp.Gas, c.shardStats.Gas)
	cp.ParallelBatches = c.shardStats.ParallelBatches
	return cp
}

// applyBatch executes one block's selected transactions and returns their
// receipts plus the serialized effects (fee burn, proposer tip, explorer
// row) the caller applies in canonical order. With more than one shard
// configured and more than one conflict component present, components run
// concurrently on copy-on-write overlays; otherwise everything runs
// serially against the canonical state.
func (c *Chain) applyBatch(sel []*pendingTx, blk *Block) ([]*chain.Receipt, []txEffects) {
	receipts := make([]*chain.Receipt, len(sel))
	effects := make([]txEffects, len(sel))
	if len(sel) == 0 {
		return receipts, effects
	}
	serial := func() {
		var gas uint64
		for i, p := range sel {
			receipts[i], effects[i] = c.executeOn(c.st, p.tx, blk)
			gas += receipts[i].GasUsed
		}
		c.shardStats.Record(0, uint64(len(sel)), gas)
	}
	if c.shards <= 1 || len(sel) < 2 {
		serial()
		return receipts, effects
	}
	comps := chain.Partition(len(sel), func(i int) []chain.ConflictKey {
		return sel[i].tx.ConflictKeys()
	})
	if len(comps) < 2 {
		serial()
		return receipts, effects
	}
	nshards := c.shards
	if nshards > len(comps) {
		nshards = len(comps)
	}
	bins := chain.Assign(comps, nshards, func(i int) uint64 { return sel[i].tx.GasLimit })
	overlays := make([]*shardState, nshards)
	shardTxs := make([]uint64, nshards)
	shardGas := make([]uint64, nshards)
	var wg sync.WaitGroup
	for si := 0; si < nshards; si++ {
		overlays[si] = newShardState(c.st)
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			ss := overlays[si]
			for _, comp := range bins[si] {
				for _, i := range comp {
					receipts[i], effects[i] = c.executeOn(ss, sel[i].tx, blk)
					shardTxs[si]++
					shardGas[si] += receipts[i].GasUsed
				}
			}
		}(si)
	}
	wg.Wait()
	for si, ss := range overlays {
		ss.commit()
		c.shardStats.Record(si, shardTxs[si], shardGas[si])
	}
	if c.shardStats != nil {
		c.shardStats.ParallelBatches++
	}
	return receipts, effects
}

// SubmitBatch validates and queues a batch of signed transactions in one
// call. Signature verification — the dominant per-transaction cost — runs
// concurrently when sharding is configured; admission (fee, nonce and
// balance checks, fault draws, mempool append) stays serial in slice order,
// so the mempool and fault streams are identical to len(txs) Submit calls.
// Result slot i is the hash or error for txs[i].
func (c *Chain) SubmitBatch(txs []*Tx) ([]chain.Hash32, []error) {
	hashes := make([]chain.Hash32, len(txs))
	errs := make([]error, len(txs))
	verr := make([]error, len(txs))
	workers := c.Shards()
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(txs) {
						return
					}
					verr[i] = txs[i].Verify()
				}
			}()
		}
		wg.Wait()
	} else {
		for i, tx := range txs {
			verr[i] = tx.Verify()
		}
	}
	for i, tx := range txs {
		if verr[i] != nil {
			errs[i] = verr[i]
			continue
		}
		hashes[i], errs[i] = c.submitVerified(tx)
	}
	return hashes, errs
}

// PendingCount reports the mempool depth.
func (c *Chain) PendingCount() int { return len(c.mempool) }

// Digest hashes the chain's externally observable end state — head block,
// fee accounting, full world state and every receipt — into one value. The
// determinism gates compare digests across shard counts and GOMAXPROCS
// settings: equal digests mean bit-identical blocks and state.
func (c *Chain) Digest() chain.Hash32 {
	var buf []byte
	put := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		buf = append(buf, n[:]...)
		buf = append(buf, b...)
	}
	putU64 := func(v uint64) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], v)
		buf = append(buf, n[:]...)
	}
	head := c.Head()
	put(head.Hash[:])
	putU64(head.Number)
	put(c.baseFee.Bytes())
	put(c.burned.Bytes())
	put(c.tipped.Bytes())

	addrs := make([]chain.Address, 0, len(c.st.balances)+len(c.st.nonces)+len(c.st.code)+len(c.st.storage))
	seen := make(map[chain.Address]bool)
	add := func(a chain.Address) {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	for a := range c.st.balances {
		add(a)
	}
	for a := range c.st.nonces {
		add(a)
	}
	for a := range c.st.code {
		add(a)
	}
	for a := range c.st.storage {
		add(a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	for _, a := range addrs {
		put(a[:])
		if b, ok := c.st.balances[a]; ok {
			put(b.Bytes())
		}
		putU64(c.st.nonces[a])
		if code, ok := c.st.code[a]; ok {
			put(code)
		}
		slots := c.st.storage[a]
		keys := make([]chain.Hash32, 0, len(slots))
		for k := range slots {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return bytes.Compare(keys[i][:], keys[j][:]) < 0
		})
		for _, k := range keys {
			put(k[:])
			v := slots[k]
			put(v[:])
		}
	}

	rhashes := make([]chain.Hash32, 0, len(c.receipts))
	for h := range c.receipts {
		rhashes = append(rhashes, h)
	}
	sort.Slice(rhashes, func(i, j int) bool {
		return bytes.Compare(rhashes[i][:], rhashes[j][:]) < 0
	})
	for _, h := range rhashes {
		r := c.receipts[h]
		put(h[:])
		putU64(r.BlockNumber)
		putU64(r.GasUsed)
		putU64(uint64(r.Submitted))
		putU64(uint64(r.Included))
		if r.Reverted {
			putU64(1)
		} else {
			putU64(0)
		}
		put([]byte(r.RevertMsg))
		put(r.ReturnValue)
		if r.Fee.Base != nil {
			put(r.Fee.Base.Bytes())
		}
	}
	return chain.Hash32(polcrypto.Hash(buf))
}
