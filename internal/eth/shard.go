package eth

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
	"agnopol/internal/mstate"
	"agnopol/internal/polcrypto"
)

// Sharded block application. Selected transactions are partitioned into
// conflict components (chain.Partition over each transaction's
// ConflictKeys), components are packed onto shards, and each shard executes
// its components serially against a copy-on-write overlay of the world
// state while shards run concurrently. Overlays touch disjoint state by
// construction, so committing them and then applying the serialized
// effects (proposer tip, burn tally, explorer rows) in canonical order
// yields a block bit-identical to the serial path at any shard count —
// TestShardedBlockBitIdentity is the gate.

// ConflictKeys names the state a transaction may touch: its sender's
// account (nonce + balance), the target's account (value credit) and the
// target contract's code and storage. For deployments the target is the
// deterministic contract address. Beneficiaries named only in calldata
// (e.g. a wallet argument the contract pays out to) are not derivable
// without executing, so they carry no key; in the PoL workloads such
// payouts always come from the area contract already in the component, and
// the bit-identity tests verify the assumption.
func (tx *Tx) ConflictKeys() []chain.ConflictKey {
	var target chain.Address
	if tx.To == nil {
		target = chain.ContractAddress(tx.From, tx.Nonce)
	} else {
		target = *tx.To
	}
	return []chain.ConflictKey{
		chain.AccountKey(tx.From),
		chain.AccountKey(target),
		chain.ContractKey(target),
	}
}

// execState is the world-state surface transaction execution needs: the
// EVM's StateDB plus nonce and code management. Both the canonical state
// and the per-shard overlays implement it.
type execState interface {
	evm.StateDB
	Nonce(chain.Address) uint64
	SetNonce(chain.Address, uint64)
	Code(chain.Address) ([]byte, bool)
	SetCode(chain.Address, []byte)
	DeleteCode(chain.Address)
}

var (
	_ execState = (*state)(nil)
	_ execState = (*shardState)(nil)
)

// shardState is a copy-on-write overlay over the canonical state: a
// private trie fork absorbs reads and writes, and a journal of final key
// values replays onto the canonical trie at commit. All state semantics
// (delete-on-zero storage, phantom-account and negative-balance
// invariants, code copying) come from the shared stateView, so the
// overlay cannot drift from the serial path.
type shardState struct {
	stateView
	ov   *mstate.Overlay
	base *state
}

func newShardState(base *state) *shardState {
	ov := mstate.NewOverlay(base.t)
	return &shardState{stateView: stateView{kv: ov}, ov: ov, base: base}
}

// commit replays the overlay's journal onto the base trie. Overlays from
// different shards hold disjoint key sets, so commit order across shards
// does not matter; within an overlay every key holds its final value, so
// replay order does not matter either.
func (s *shardState) commit() {
	s.ov.CommitTo(s.base.t)
}

// SetShards configures how many execution shards Step may fan out to; n <= 1
// keeps the serial path. The setting changes scheduling only — block
// contents are identical at every value.
func (c *Chain) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	c.shards = n
	c.shardStats = chain.NewShardStats(n)
}

// Shards returns the configured shard count.
func (c *Chain) Shards() int {
	if c.shards < 1 {
		return 1
	}
	return c.shards
}

// ShardStats returns a copy of the per-shard execution tallies accumulated
// since SetShards, or nil when sharding was never configured.
func (c *Chain) ShardStats() *chain.ShardStats {
	if c.shardStats == nil {
		return nil
	}
	cp := chain.NewShardStats(len(c.shardStats.Txs))
	copy(cp.Txs, c.shardStats.Txs)
	copy(cp.Gas, c.shardStats.Gas)
	cp.ParallelBatches = c.shardStats.ParallelBatches
	return cp
}

// applyBatch executes one block's selected transactions and returns their
// receipts plus the serialized effects (fee burn, proposer tip, explorer
// row) the caller applies in canonical order. With more than one shard
// configured and more than one conflict component present, components run
// concurrently on copy-on-write overlays; otherwise everything runs
// serially against the canonical state.
func (c *Chain) applyBatch(sel []*pendingTx, blk *Block) ([]*chain.Receipt, []txEffects) {
	receipts := make([]*chain.Receipt, len(sel))
	effects := make([]txEffects, len(sel))
	if len(sel) == 0 {
		return receipts, effects
	}
	serial := func() {
		var gas uint64
		for i, p := range sel {
			receipts[i], effects[i] = c.executeOn(c.st, p.tx, blk)
			gas += receipts[i].GasUsed
		}
		c.shardStats.Record(0, uint64(len(sel)), gas)
	}
	if c.shards <= 1 || len(sel) < 2 {
		serial()
		return receipts, effects
	}
	comps := chain.Partition(len(sel), func(i int) []chain.ConflictKey {
		return sel[i].tx.ConflictKeys()
	})
	if len(comps) < 2 {
		serial()
		return receipts, effects
	}
	nshards := c.shards
	if nshards > len(comps) {
		nshards = len(comps)
	}
	bins := chain.Assign(comps, nshards, func(i int) uint64 { return sel[i].tx.GasLimit })
	overlays := make([]*shardState, nshards)
	shardTxs := make([]uint64, nshards)
	shardGas := make([]uint64, nshards)
	var wg sync.WaitGroup
	for si := 0; si < nshards; si++ {
		overlays[si] = newShardState(c.st)
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			ss := overlays[si]
			for _, comp := range bins[si] {
				for _, i := range comp {
					receipts[i], effects[i] = c.executeOn(ss, sel[i].tx, blk)
					shardTxs[si]++
					shardGas[si] += receipts[i].GasUsed
				}
			}
		}(si)
	}
	wg.Wait()
	for si, ss := range overlays {
		ss.commit()
		c.shardStats.Record(si, shardTxs[si], shardGas[si])
	}
	if c.shardStats != nil {
		c.shardStats.ParallelBatches++
	}
	return receipts, effects
}

// SubmitBatch validates and queues a batch of signed transactions in one
// call. Signature verification — the dominant per-transaction cost — runs
// concurrently when sharding is configured; admission (fee, nonce and
// balance checks, fault draws, mempool append) stays serial in slice order,
// so the mempool and fault streams are identical to len(txs) Submit calls.
// Result slot i is the hash or error for txs[i].
func (c *Chain) SubmitBatch(txs []*Tx) ([]chain.Hash32, []error) {
	hashes := make([]chain.Hash32, len(txs))
	errs := make([]error, len(txs))
	verr := make([]error, len(txs))
	workers := c.Shards()
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(txs) {
						return
					}
					verr[i] = txs[i].Verify()
				}
			}()
		}
		wg.Wait()
	} else {
		for i, tx := range txs {
			verr[i] = tx.Verify()
		}
	}
	for i, tx := range txs {
		if verr[i] != nil {
			errs[i] = verr[i]
			continue
		}
		hashes[i], errs[i] = c.submitVerified(tx)
	}
	return hashes, errs
}

// PendingCount reports the mempool depth.
func (c *Chain) PendingCount() int { return len(c.mempool) }

// Digest hashes the chain's externally observable end state — head block,
// fee accounting, the world-state Merkle root and the rolling receipt
// accumulator — into one value. The determinism gates compare digests
// across shard counts and GOMAXPROCS settings: equal digests mean
// bit-identical blocks and state. The world state enters through the
// state root (every entry is a trie leaf) and receipts are folded into
// the accumulator at inclusion time in canonical block order, so Digest
// is O(1) instead of a full-world sort-and-hash — which also makes it
// independent of how much pruned history (SetRetention) is still held.
func (c *Chain) Digest() chain.Hash32 {
	var buf []byte
	put := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		buf = append(buf, n[:]...)
		buf = append(buf, b...)
	}
	putU64 := func(v uint64) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], v)
		buf = append(buf, n[:]...)
	}
	head := c.Head()
	put(head.Hash[:])
	putU64(head.Number)
	put(c.baseFee.Bytes())
	put(c.burned.Bytes())
	put(c.tipped.Bytes())
	root := c.st.Root()
	put(root[:])
	put(c.rcptAcc[:])
	putU64(c.rcptCount)
	return chain.Hash32(polcrypto.Hash(buf))
}

// foldReceipt absorbs one included receipt into the rolling digest
// accumulator. Called from Step's canonical merge loop, so the fold
// order is block order — identical at every shard count. Fee components
// are encoded with an explicit sign byte (encodeBalance) so a sign flip
// can never digest identically.
func (c *Chain) foldReceipt(h chain.Hash32, r *chain.Receipt) {
	var buf []byte
	put := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		buf = append(buf, n[:]...)
		buf = append(buf, b...)
	}
	putU64 := func(v uint64) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], v)
		buf = append(buf, n[:]...)
	}
	put(c.rcptAcc[:])
	put(h[:])
	putU64(r.BlockNumber)
	putU64(r.GasUsed)
	putU64(uint64(r.Submitted))
	putU64(uint64(r.Included))
	if r.Reverted {
		putU64(1)
	} else {
		putU64(0)
	}
	put([]byte(r.RevertMsg))
	put(r.ReturnValue)
	if r.Fee.Base != nil {
		put(encodeBalance(r.Fee.Base))
	}
	c.rcptAcc = chain.Hash32(polcrypto.Hash(buf))
	c.rcptCount++
}
