package eth

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"

	"agnopol/internal/chain"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s must panic", what)
		}
	}()
	fn()
}

// execStates returns each backend under test with a fresh world: the
// canonical trie-backed state and a shard overlay over one. Every state
// semantic must hold identically on both.
func execStates() map[string]func() execState {
	return map[string]func() execState{
		"state":      func() execState { return newState() },
		"shardState": func() execState { return newShardState(newState()) },
	}
}

// Regression: SubBalance/AddBalance used to materialize entries for
// accounts that did not exist — flipping AccountExists, entering the
// digest, and allowing negative balances to accrue silently.
func TestPhantomAccountInvariants(t *testing.T) {
	ghost := chain.AddressFromBytes([]byte("ghost"))
	funded := chain.AddressFromBytes([]byte("funded"))
	for name, mk := range execStates() {
		t.Run(name, func(t *testing.T) {
			st := mk()
			st.AddBalance(ghost, big.NewInt(0))
			if st.AccountExists(ghost) {
				t.Fatal("zero credit of an absent account must not create it")
			}
			mustPanic(t, "debit of absent account", func() {
				st.SubBalance(ghost, big.NewInt(1))
			})
			if st.AccountExists(ghost) {
				t.Fatal("failed debit must not create the account")
			}
			mustPanic(t, "negative credit of absent account", func() {
				st.AddBalance(ghost, big.NewInt(-1))
			})
			st.AddBalance(funded, big.NewInt(10))
			mustPanic(t, "overdraft", func() {
				st.SubBalance(funded, big.NewInt(11))
			})
			st.SubBalance(funded, big.NewInt(0)) // zero debit of existing: fine
			if st.GetBalance(funded).Int64() != 10 {
				t.Fatal("balance disturbed by failed operations")
			}
		})
	}
	// Phantom entries must also stay out of the state root.
	a, b := newState(), newState()
	a.AddBalance(ghost, big.NewInt(0))
	if a.Root() != b.Root() {
		t.Fatal("no-op credit changed the state root")
	}
}

// Regression: SetCode used to retain the caller's slice, so mutating the
// buffer after deployment silently rewrote stored contract code.
func TestSetCodeDefensiveCopy(t *testing.T) {
	addr := chain.AddressFromBytes([]byte("contract"))
	for name, mk := range execStates() {
		t.Run(name, func(t *testing.T) {
			st := mk()
			code := []byte{0x60, 0x01, 0x60, 0x02}
			st.SetCode(addr, code)
			code[0] = 0xff
			got, ok := st.Code(addr)
			if !ok || !bytes.Equal(got, []byte{0x60, 0x01, 0x60, 0x02}) {
				t.Fatalf("stored code aliased the caller's buffer: %x", got)
			}
		})
	}
	// The overlay's copy must survive commit un-aliased too.
	base := newState()
	ov := newShardState(base)
	code := []byte{0xAA, 0xBB}
	ov.SetCode(addr, code)
	code[1] = 0x00
	ov.commit()
	got, _ := base.Code(addr)
	if !bytes.Equal(got, []byte{0xAA, 0xBB}) {
		t.Fatalf("committed code aliased the caller's buffer: %x", got)
	}
}

// Regression: the digest used big.Int.Bytes(), which drops the sign — a
// balance of -5 hashed identically to +5. Balances are now encoded with
// an explicit sign byte, so sign flips reach the root and the digest.
func TestDigestSignSensitivity(t *testing.T) {
	addr := chain.AddressFromBytes([]byte("signy"))
	pos, neg := newState(), newState()
	pos.setBalance(addr, big.NewInt(5))
	neg.setBalance(addr, big.NewInt(-5))
	if pos.Root() == neg.Root() {
		t.Fatal("sign-differing balances must produce different state roots")
	}
	if bytes.Equal(encodeBalance(big.NewInt(5)), encodeBalance(big.NewInt(-5))) {
		t.Fatal("encodeBalance is sign-blind")
	}

	mk := func(v int64) chain.Hash32 {
		c := newTestChain(t)
		c.st.setBalance(addr, big.NewInt(v))
		return c.Digest()
	}
	if mk(5) == mk(-5) {
		t.Fatal("sign-differing states must digest differently")
	}
}

// stateModel is the flat reference implementation the differential test
// compares the trie backends against.
type stateModel struct {
	bal   map[chain.Address]*big.Int
	nonce map[chain.Address]uint64
	code  map[chain.Address][]byte
	stor  map[chain.Address]map[chain.Hash32]chain.Hash32
}

func newStateModel() *stateModel {
	return &stateModel{
		bal:   make(map[chain.Address]*big.Int),
		nonce: make(map[chain.Address]uint64),
		code:  make(map[chain.Address][]byte),
		stor:  make(map[chain.Address]map[chain.Hash32]chain.Hash32),
	}
}

// TestDifferentialStateBackends drives one randomized op sequence through
// the flat model, the canonical state, a periodically-committed shard
// overlay, and a trie snapshot fork — and demands identical reads along
// the way and identical state roots at the end.
func TestDifferentialStateBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	addrs := make([]chain.Address, 8)
	for i := range addrs {
		addrs[i] = chain.AddressFromBytes([]byte{byte(i + 1)})
	}
	keys := []chain.Hash32{{1}, {2}, {3}}

	model := newStateModel()
	flat := newState()
	ovBase := newState()
	ov := newShardState(ovBase)
	snapBase := newState()
	snap := snapBase.snapshot() // fork immediately; mutate the fork only

	targets := []execState{flat, ov, snap}

	apply := func(fn func(execState)) {
		for _, st := range targets {
			fn(st)
		}
	}

	for step := 0; step < 4000; step++ {
		a := addrs[rng.Intn(len(addrs))]
		switch rng.Intn(7) {
		case 0: // credit
			v := big.NewInt(rng.Int63n(1000))
			apply(func(st execState) { st.AddBalance(a, v) })
			cur, ok := model.bal[a]
			if !ok {
				cur = new(big.Int)
			}
			next := new(big.Int).Add(cur, v)
			if ok || v.Sign() != 0 {
				model.bal[a] = next
			}
		case 1: // debit within balance, only when the account exists
			cur, ok := model.bal[a]
			if !ok || cur.Sign() == 0 {
				continue
			}
			v := big.NewInt(rng.Int63n(cur.Int64() + 1))
			apply(func(st execState) { st.SubBalance(a, v) })
			if v.Sign() != 0 {
				model.bal[a] = new(big.Int).Sub(cur, v)
			}
		case 2: // nonce
			n := rng.Uint64() % 1000
			apply(func(st execState) { st.SetNonce(a, n) })
			model.nonce[a] = n
		case 3: // code
			code := make([]byte, 1+rng.Intn(16))
			rng.Read(code)
			apply(func(st execState) { st.SetCode(a, code) })
			model.code[a] = append([]byte(nil), code...)
		case 4: // delete code
			apply(func(st execState) { st.DeleteCode(a) })
			delete(model.code, a)
		case 5: // storage write (zero value deletes)
			k := keys[rng.Intn(len(keys))]
			var v chain.Hash32
			if rng.Intn(3) != 0 {
				v[0] = byte(rng.Intn(255) + 1)
			}
			apply(func(st execState) { st.SetStorage(a, k, v) })
			if v == (chain.Hash32{}) {
				delete(model.stor[a], k)
			} else {
				if model.stor[a] == nil {
					model.stor[a] = make(map[chain.Hash32]chain.Hash32)
				}
				model.stor[a][k] = v
			}
		case 6: // read checks against the model
			wantBal, ok := model.bal[a]
			if !ok {
				wantBal = new(big.Int)
			}
			wantCode, wantHasCode := model.code[a]
			for _, st := range targets {
				if st.GetBalance(a).Cmp(wantBal) != 0 {
					t.Fatalf("step %d: balance mismatch for %x", step, a[:2])
				}
				if st.Nonce(a) != model.nonce[a] {
					t.Fatalf("step %d: nonce mismatch", step)
				}
				code, hasCode := st.Code(a)
				if hasCode != wantHasCode || !bytes.Equal(code, wantCode) {
					t.Fatalf("step %d: code mismatch", step)
				}
				for _, k := range keys {
					if st.GetStorage(a, k) != model.stor[a][k] {
						t.Fatalf("step %d: storage mismatch", step)
					}
				}
				exists := wantHasCode || ok
				if st.AccountExists(a) != exists {
					t.Fatalf("step %d: existence mismatch (want %v)", step, exists)
				}
			}
		}
		// Periodically fold the overlay into its base and stack a new one,
		// exercising commit mid-sequence rather than only at the end.
		if step%500 == 499 {
			ov.commit()
			ov = newShardState(ovBase)
			targets[1] = ov
		}
	}
	ov.commit()

	flatRoot := flat.Root()
	if ovBase.Root() != flatRoot {
		t.Fatal("overlay-committed state root diverges from flat state")
	}
	if snap.Root() != flatRoot {
		t.Fatal("snapshot-fork state root diverges from flat state")
	}
	if snapBase.Root() != (newState()).Root() {
		t.Fatal("mutating a snapshot fork leaked into its base")
	}
}
