package eth

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
)

// Client is the node-provider view of a chain (the Infura/Quicknode role in
// the paper): it submits transactions and waits for confirmations, charging
// the RPC round-trip latency to the simulated clock. The latency between
// Submit and the confirmed Receipt is exactly what the paper's figures plot.
type Client struct {
	chain *Chain
	rng   *chain.Rand
}

// NewClient opens a client against a chain. Clients draw their simulated
// RPC latencies from the chain's pre-forked client stream (shared by
// every client on the chain), so attaching one never advances the
// chain's own rng — a restored checkpoint stays bit-exact no matter how
// many clients wrap the chain afterwards.
func NewClient(c *Chain) *Client {
	return &Client{chain: c, rng: c.clientRng}
}

// Chain exposes the underlying chain (for experiment bookkeeping).
func (cl *Client) Chain() *Chain { return cl.chain }

func (cl *Client) rpcLatency() time.Duration {
	cfg := cl.chain.cfg
	jitter := time.Duration(cl.rng.Float64() * float64(cfg.RPCLatencyJitter))
	return cfg.RPCLatencyMean + jitter
}

// APIExtraDelay samples and applies the connector's post-call
// event-subscription delay (see Config.APIExtraDelayMean); it returns the
// sampled duration.
func (cl *Client) APIExtraDelay() time.Duration {
	cfg := cl.chain.cfg
	if cfg.APIExtraDelayMean == 0 {
		return 0
	}
	d := cfg.APIExtraDelayMean + time.Duration((cl.rng.Float64()*2-1)*float64(cfg.APIExtraDelayJitter))
	if d < 0 {
		d = 0
	}
	cl.chain.clock.AdvanceTo(cl.chain.clock.Now() + d)
	return d
}

// Sleep advances the simulated clock by d — the client-side wait the
// resilience layer's backoff uses between retries.
func (cl *Client) Sleep(d time.Duration) {
	if d > 0 {
		cl.chain.clock.AdvanceTo(cl.chain.clock.Now() + d)
	}
}

// ErrTimeout reports a transaction not confirmed within the wait budget.
var ErrTimeout = errors.New("eth: transaction not confirmed in time")

// maxWaitSlots bounds SubmitAndWait so a drowned transaction surfaces as an
// error instead of an endless simulation.
const maxWaitSlots = 600

// SubmitAndWait signs nothing (the tx must be signed), submits it, advances
// the chain until the transaction is included plus the configured number of
// confirmations, and returns the receipt with client-observed timestamps.
func (cl *Client) SubmitAndWait(tx *Tx) (*chain.Receipt, error) {
	submitted := cl.chain.clock.Now()
	// The RPC hop delays when the network sees the transaction.
	cl.chain.clock.AdvanceTo(submitted + cl.rpcLatency())
	h, err := cl.chain.Submit(tx)
	if err != nil {
		return nil, err
	}
	for i := 0; i < maxWaitSlots; i++ {
		cl.chain.Step()
		rcpt, ok := cl.chain.Receipt(h)
		if !ok {
			continue
		}
		// Wait for the configured confirmation depth.
		for cl.chain.Head().Number < rcpt.BlockNumber+uint64(cl.chain.cfg.Confirmations) {
			cl.chain.Step()
		}
		observed := cl.chain.Head().Time + cl.rpcLatency()
		cl.chain.clock.AdvanceTo(observed)
		rcpt.Submitted = submitted
		rcpt.Included = observed
		return rcpt, nil
	}
	return nil, fmt.Errorf("%w after %d slots", ErrTimeout, maxWaitSlots)
}

// DefaultGasLimit is the limit clients attach when not estimating.
const DefaultGasLimit = 4_000_000

// NewTx builds a signed transaction from an account with the chain's
// default fee policy (base fee headroom ×2 plus the default tip).
func (cl *Client) NewTx(acct *Account, to *chain.Address, value *big.Int, data []byte, gasLimit uint64) *Tx {
	if value == nil {
		value = new(big.Int)
	}
	if gasLimit == 0 {
		gasLimit = DefaultGasLimit
	}
	maxFee := new(big.Int).Mul(cl.chain.baseFee, big.NewInt(2))
	maxFee.Add(maxFee, cl.chain.cfg.DefaultTip)
	tx := &Tx{
		From:     acct.Address,
		Nonce:    cl.chain.PendingNonce(acct.Address),
		To:       to,
		Value:    value,
		Data:     data,
		GasLimit: gasLimit,
		MaxFee:   maxFee,
		MaxTip:   new(big.Int).Set(cl.chain.cfg.DefaultTip),
	}
	tx.Sign(acct)
	return tx
}

// Deploy submits a contract-creation transaction (code + constructor
// calldata) and returns the receipt and new contract address.
func (cl *Client) Deploy(acct *Account, code, ctorData []byte, value *big.Int, gasLimit uint64) (*chain.Receipt, chain.Address, error) {
	tx := cl.NewTx(acct, nil, value, PackDeployData(code, ctorData), gasLimit)
	addr := chain.ContractAddress(acct.Address, tx.Nonce)
	rcpt, err := cl.SubmitAndWait(tx)
	if err != nil {
		return nil, chain.Address{}, err
	}
	if rcpt.Reverted {
		return rcpt, chain.Address{}, fmt.Errorf("eth: deployment reverted: %s", rcpt.RevertMsg)
	}
	return rcpt, addr, nil
}

// Call submits a contract call and waits for its confirmation.
func (cl *Client) Call(acct *Account, contract chain.Address, data []byte, value *big.Int, gasLimit uint64) (*chain.Receipt, error) {
	tx := cl.NewTx(acct, &contract, value, data, gasLimit)
	return cl.SubmitAndWait(tx)
}

// View executes a read-only call against current state: free, no
// transaction, no time advance beyond the RPC hop (§4.1.2: views have no
// cost).
func (cl *Client) View(contract chain.Address, data []byte) ([]byte, error) {
	code, ok := cl.chain.st.Code(contract)
	if !ok {
		return nil, fmt.Errorf("eth: no contract at %s", contract)
	}
	// Run against a copy-on-write journal; evm.Execute reverts nothing on
	// success, so guard state by using a throwaway overlay.
	overlay := &viewState{inner: cl.chain.st}
	res := evm.Execute(evm.Context{
		State:       overlay,
		Caller:      chain.Address{},
		Address:     contract,
		Value:       new(big.Int),
		CallData:    data,
		GasLimit:    DefaultGasLimit,
		BlockNumber: cl.chain.Head().Number,
		Timestamp:   uint64(cl.chain.Head().Time / time.Second),
	}, code)
	if res.Err != nil {
		return nil, res.Err
	}
	if res.Reverted {
		return nil, fmt.Errorf("eth: view reverted: %s", res.RevertMsg)
	}
	return res.ReturnData, nil
}

// viewState lets views run without mutating the chain.
type viewState struct {
	inner    *state
	balances map[chain.Address]*big.Int
	storage  map[chain.Address]map[chain.Hash32]chain.Hash32
}

var _ evm.StateDB = (*viewState)(nil)

func (v *viewState) GetBalance(a chain.Address) *big.Int {
	if v.balances != nil {
		if b, ok := v.balances[a]; ok {
			return new(big.Int).Set(b)
		}
	}
	return v.inner.GetBalance(a)
}

func (v *viewState) AddBalance(a chain.Address, d *big.Int) {
	if v.balances == nil {
		v.balances = make(map[chain.Address]*big.Int)
	}
	v.balances[a] = new(big.Int).Add(v.GetBalance(a), d)
}

func (v *viewState) SubBalance(a chain.Address, d *big.Int) {
	if v.balances == nil {
		v.balances = make(map[chain.Address]*big.Int)
	}
	v.balances[a] = new(big.Int).Sub(v.GetBalance(a), d)
}

func (v *viewState) GetStorage(addr chain.Address, key chain.Hash32) chain.Hash32 {
	if m, ok := v.storage[addr]; ok {
		if val, ok := m[key]; ok {
			return val
		}
	}
	return v.inner.GetStorage(addr, key)
}

func (v *viewState) SetStorage(addr chain.Address, key, value chain.Hash32) {
	if v.storage == nil {
		v.storage = make(map[chain.Address]map[chain.Hash32]chain.Hash32)
	}
	m, ok := v.storage[addr]
	if !ok {
		m = make(map[chain.Hash32]chain.Hash32)
		v.storage[addr] = m
	}
	m[key] = value
}

func (v *viewState) AccountExists(a chain.Address) bool { return v.inner.AccountExists(a) }
