// Package eth is a discrete-event simulator of the Ethereum-family chains
// the paper evaluates on (Ropsten, Goerli, Polygon Mumbai): EIP-1559 base
// fee dynamics, a priority-fee-ordered mempool competing with background
// traffic, 12-second proof-of-stake slots with proposer/committee selection,
// contract execution through the EVM (package evm), and a client layer whose
// submit-to-confirmation latency is what the paper's figures plot.
package eth

import (
	"encoding/binary"
	"fmt"
	"math/big"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
	"agnopol/internal/mstate"
	"agnopol/internal/polcrypto"
)

// Account is an externally-owned account with its signing key. Nonces are
// not tracked locally: clients query the chain's pending nonce, as real
// wallets do, so a rejected submission never wedges the account.
type Account struct {
	Key     *polcrypto.KeyPair
	Address chain.Address
}

// Trie key derivation. Every logical state entry — a balance, a nonce, a
// code blob, one storage word — is one key in the Merkle trie, tagged by
// column family so families cannot collide.
func balKey(a chain.Address) mstate.Key   { return mstate.KeyOf("eth/bal", a[:]) }
func nonceKey(a chain.Address) mstate.Key { return mstate.KeyOf("eth/nonce", a[:]) }
func codeKey(a chain.Address) mstate.Key  { return mstate.KeyOf("eth/code", a[:]) }
func storKey(a chain.Address, k chain.Hash32) mstate.Key {
	return mstate.KeyOf("eth/stor", a[:], k[:])
}

// encodeBalance renders a balance with an explicit sign byte so that a
// negative value can never hash identically to its positive counterpart
// (the sign-blind big.Int.Bytes() bug). The invariant checks in
// AddBalance/SubBalance should make negatives unreachable; the encoding
// is sign-explicit anyway, as defense in depth for the digest.
func encodeBalance(b *big.Int) []byte {
	sign := byte(0)
	switch b.Sign() {
	case 1:
		sign = 1
	case -1:
		sign = 2
	}
	return append([]byte{sign}, b.Bytes()...)
}

func decodeBalance(enc []byte) *big.Int {
	if len(enc) == 0 {
		return new(big.Int)
	}
	b := new(big.Int).SetBytes(enc[1:])
	if enc[0] == 2 {
		b.Neg(b)
	}
	return b
}

// stateKV is the key/value surface the accessor layer runs on — the
// canonical trie and the shard overlay both implement it, so the state
// semantics below exist exactly once.
type stateKV interface {
	Get(mstate.Key) ([]byte, bool)
	Put(mstate.Key, []byte)
	Delete(mstate.Key)
	Has(mstate.Key) bool
}

var (
	_ stateKV = (*mstate.Trie)(nil)
	_ stateKV = (*mstate.Overlay)(nil)
)

// stateView implements the world-state accessors (evm.StateDB plus nonce
// and code management) over any stateKV.
type stateView struct {
	kv stateKV
}

func (s *stateView) GetBalance(a chain.Address) *big.Int {
	enc, _ := s.kv.Get(balKey(a))
	return decodeBalance(enc)
}

// AddBalance credits a. A zero credit to an absent account is a no-op:
// it must not conjure a phantom account entry (which would flip
// AccountExists and enter the state root).
func (s *stateView) AddBalance(a chain.Address, v *big.Int) {
	k := balKey(a)
	enc, ok := s.kv.Get(k)
	if !ok && v.Sign() == 0 {
		return
	}
	b := decodeBalance(enc)
	b.Add(b, v)
	if b.Sign() < 0 {
		panic(fmt.Sprintf("eth: balance of %x driven negative (%s)", a[:4], b))
	}
	s.kv.Put(k, encodeBalance(b))
}

// SubBalance debits a. Debiting an absent account is an invariant
// violation, not an implicit account creation with a negative balance —
// every legitimate debit (fees, value transfers) is balance-checked
// upstream, so reaching either panic means admission or execution let an
// overdraft through.
func (s *stateView) SubBalance(a chain.Address, v *big.Int) {
	if v.Sign() == 0 {
		return
	}
	k := balKey(a)
	enc, ok := s.kv.Get(k)
	if !ok {
		panic(fmt.Sprintf("eth: debit of absent account %x", a[:4]))
	}
	b := decodeBalance(enc)
	b.Sub(b, v)
	if b.Sign() < 0 {
		panic(fmt.Sprintf("eth: balance of %x driven negative (%s)", a[:4], b))
	}
	s.kv.Put(k, encodeBalance(b))
}

// setBalance force-writes a balance without invariant checks. Test hook:
// the sign-digest regression test needs to plant a negative balance.
func (s *stateView) setBalance(a chain.Address, b *big.Int) {
	s.kv.Put(balKey(a), encodeBalance(b))
}

func (s *stateView) GetStorage(addr chain.Address, key chain.Hash32) chain.Hash32 {
	enc, ok := s.kv.Get(storKey(addr, key))
	var v chain.Hash32
	if ok {
		copy(v[:], enc)
	}
	return v
}

func (s *stateView) SetStorage(addr chain.Address, key, value chain.Hash32) {
	k := storKey(addr, key)
	if (value == chain.Hash32{}) {
		s.kv.Delete(k)
		return
	}
	s.kv.Put(k, value[:])
}

func (s *stateView) AccountExists(a chain.Address) bool {
	return s.kv.Has(balKey(a)) || s.kv.Has(codeKey(a))
}

// Nonce implements execState.
func (s *stateView) Nonce(a chain.Address) uint64 {
	enc, ok := s.kv.Get(nonceKey(a))
	if !ok {
		return 0
	}
	return binary.BigEndian.Uint64(enc)
}

// SetNonce implements execState.
func (s *stateView) SetNonce(a chain.Address, n uint64) {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], n)
	s.kv.Put(nonceKey(a), enc[:])
}

// Code implements execState. The returned slice is state-owned; callers
// must not mutate it.
func (s *stateView) Code(a chain.Address) ([]byte, bool) {
	return s.kv.Get(codeKey(a))
}

// SetCode implements execState. The trie copies on Put, so the state
// never aliases the caller's slice — mutating `code` after SetCode must
// not change stored contract code.
func (s *stateView) SetCode(a chain.Address, code []byte) {
	s.kv.Put(codeKey(a), code)
}

// DeleteCode implements execState.
func (s *stateView) DeleteCode(a chain.Address) {
	s.kv.Delete(codeKey(a))
}

// state is the canonical world state: a Merkle trie over balances,
// nonces, contract code and storage. It implements evm.StateDB.
type state struct {
	stateView
	t *mstate.Trie
}

func newState() *state {
	t := mstate.New()
	return &state{stateView: stateView{kv: t}, t: t}
}

var _ evm.StateDB = (*state)(nil)

// Root is the Merkle root of the world state; it goes into every block
// header and anchors the chain digest.
func (s *state) Root() chain.Hash32 {
	return chain.Hash32(s.t.Root())
}

// snapshot forks the state in O(1); both sides may keep mutating.
func (s *state) snapshot() *state {
	t := s.t.Snapshot()
	return &state{stateView: stateView{kv: t}, t: t}
}
