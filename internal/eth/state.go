// Package eth is a discrete-event simulator of the Ethereum-family chains
// the paper evaluates on (Ropsten, Goerli, Polygon Mumbai): EIP-1559 base
// fee dynamics, a priority-fee-ordered mempool competing with background
// traffic, 12-second proof-of-stake slots with proposer/committee selection,
// contract execution through the EVM (package evm), and a client layer whose
// submit-to-confirmation latency is what the paper's figures plot.
package eth

import (
	"math/big"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
	"agnopol/internal/polcrypto"
)

// Account is an externally-owned account with its signing key. Nonces are
// not tracked locally: clients query the chain's pending nonce, as real
// wallets do, so a rejected submission never wedges the account.
type Account struct {
	Key     *polcrypto.KeyPair
	Address chain.Address
}

// state is the world state: balances, nonces, contract code and storage.
// It implements evm.StateDB.
type state struct {
	balances map[chain.Address]*big.Int
	nonces   map[chain.Address]uint64
	code     map[chain.Address][]byte
	storage  map[chain.Address]map[chain.Hash32]chain.Hash32
}

func newState() *state {
	return &state{
		balances: make(map[chain.Address]*big.Int),
		nonces:   make(map[chain.Address]uint64),
		code:     make(map[chain.Address][]byte),
		storage:  make(map[chain.Address]map[chain.Hash32]chain.Hash32),
	}
}

var _ evm.StateDB = (*state)(nil)

func (s *state) GetBalance(a chain.Address) *big.Int {
	if b, ok := s.balances[a]; ok {
		return new(big.Int).Set(b)
	}
	return new(big.Int)
}

func (s *state) AddBalance(a chain.Address, v *big.Int) {
	b, ok := s.balances[a]
	if !ok {
		b = new(big.Int)
		s.balances[a] = b
	}
	b.Add(b, v)
}

func (s *state) SubBalance(a chain.Address, v *big.Int) {
	b, ok := s.balances[a]
	if !ok {
		b = new(big.Int)
		s.balances[a] = b
	}
	b.Sub(b, v)
}

func (s *state) GetStorage(addr chain.Address, key chain.Hash32) chain.Hash32 {
	if m, ok := s.storage[addr]; ok {
		return m[key]
	}
	return chain.Hash32{}
}

func (s *state) SetStorage(addr chain.Address, key, value chain.Hash32) {
	m, ok := s.storage[addr]
	if !ok {
		m = make(map[chain.Hash32]chain.Hash32)
		s.storage[addr] = m
	}
	if (value == chain.Hash32{}) {
		delete(m, key)
		return
	}
	m[key] = value
}

func (s *state) AccountExists(a chain.Address) bool {
	if _, ok := s.balances[a]; ok {
		return true
	}
	_, ok := s.code[a]
	return ok
}

// Nonce implements execState.
func (s *state) Nonce(a chain.Address) uint64 { return s.nonces[a] }

// SetNonce implements execState.
func (s *state) SetNonce(a chain.Address, n uint64) { s.nonces[a] = n }

// Code implements execState.
func (s *state) Code(a chain.Address) ([]byte, bool) {
	c, ok := s.code[a]
	return c, ok
}

// SetCode implements execState.
func (s *state) SetCode(a chain.Address, code []byte) { s.code[a] = code }

// DeleteCode implements execState.
func (s *state) DeleteCode(a chain.Address) { delete(s.code, a) }
