package eth

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"agnopol/internal/chain"
	"agnopol/internal/mstate"
)

// Options configures Open. Config and Seed behave exactly as in
// NewChain; Store/Root/Checkpoint select the restart-from-root path.
type Options struct {
	Config Config
	Seed   uint64
	// Store supplies committed trie nodes (e.g. a diskstore.Store). Nil
	// means the purely in-memory path: Open degenerates to NewChain.
	Store mstate.NodeStore
	// Root is the committed state root to load from Store. The zero
	// root loads an empty state.
	Root mstate.Hash
	// Checkpoint restores the non-state chain position (head block, fee
	// accounting, clock, rng, mempool) captured by Chain.Checkpoint. Nil
	// opens a fresh chain over the loaded state.
	Checkpoint *Checkpoint
}

// PendingTx is one mempool entry inside a Checkpoint.
type PendingTx struct {
	Tx        *Tx
	Submitted time.Duration
	Delayed   bool
}

// Checkpoint is everything besides the world state a chain needs to
// continue bit-identically after a restart: restoring it next to the
// state trie makes Step produce the same blocks, and Digest the same
// value, as a process that never stopped. It is JSON-serializable so
// callers can park it in a diskstore manifest's meta blob.
type Checkpoint struct {
	Name        string
	HeadNumber  uint64
	HeadHash    chain.Hash32
	HeadTime    time.Duration
	HeadBaseFee []byte
	StateRoot   chain.Hash32
	BaseFee     []byte
	Burned      []byte
	Tipped      []byte
	Justified   uint64
	Finalized   uint64
	// SpikeBlocksLeft carries an in-flight congestion episode across the
	// restart; the demand model continues it instead of resampling.
	SpikeBlocksLeft int
	RcptAcc         chain.Hash32
	RcptCount       uint64
	Clock           time.Duration
	// Rng is the chain PRNG's stream position (chain.Rand.State).
	Rng       uint64
	Retention int
	Mempool   []PendingTx
}

// Checkpoint captures the chain's restart point. The world state is not
// included — commit it separately with CommitState — and the snapshot
// borrows the live mempool transactions, so serialize it before
// mutating the chain further. Chains with a fault injector attached
// refuse to checkpoint: injector stream positions are not captured, so
// a resumed run could not replay identically.
func (c *Chain) Checkpoint() (*Checkpoint, error) {
	if c.flt != nil {
		return nil, errors.New("eth: cannot checkpoint with fault injection attached")
	}
	head := c.Head()
	ck := &Checkpoint{
		Name:            c.cfg.Name,
		HeadNumber:      head.Number,
		HeadHash:        head.Hash,
		HeadTime:        head.Time,
		HeadBaseFee:     head.BaseFee.Bytes(),
		StateRoot:       c.st.Root(),
		BaseFee:         c.baseFee.Bytes(),
		Burned:          c.burned.Bytes(),
		Tipped:          c.tipped.Bytes(),
		Justified:       c.justified,
		Finalized:       c.finalized,
		SpikeBlocksLeft: c.spikeBlocksLeft,
		RcptAcc:         c.rcptAcc,
		RcptCount:       c.rcptCount,
		Clock:           c.clock.Now(),
		Rng:             c.rng.State(),
		Retention:       c.retention,
	}
	for _, p := range c.mempool {
		ck.Mempool = append(ck.Mempool, PendingTx{Tx: p.tx, Submitted: p.submitted, Delayed: p.delayed})
	}
	return ck, nil
}

// CommitState writes the world state's trie nodes into store and
// returns the state root. Pair it with Checkpoint, then make both
// durable (e.g. diskstore.Store.Commit with the serialized checkpoint
// as the manifest meta).
func (c *Chain) CommitState(store mstate.NodeStore) (mstate.Hash, error) {
	return c.st.t.Commit(store)
}

// Open builds a chain per Options. With no Store it is exactly
// NewChain: a fresh in-memory chain (NewChain itself is a thin wrapper
// over this path). With a Store it reconstructs the world state from
// the committed Root instead of replaying blocks, and — when a
// Checkpoint is given — repositions the chain so the next Step
// continues the interrupted run bit-identically.
func Open(o Options) (*Chain, error) {
	c := newChain(o.Config, o.Seed)
	if o.Store == nil {
		if o.Root != (mstate.Hash{}) || o.Checkpoint != nil {
			return nil, errors.New("eth: Open with a root or checkpoint requires a store")
		}
		return c, nil
	}
	t, err := mstate.Load(o.Store, o.Root)
	if err != nil {
		return nil, fmt.Errorf("eth: load state %x: %w", o.Root[:8], err)
	}
	c.st = &state{stateView: stateView{kv: t}, t: t}
	if o.Checkpoint != nil {
		if err := c.restore(o.Checkpoint); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Chain) restore(ck *Checkpoint) error {
	if ck.Name != c.cfg.Name {
		return fmt.Errorf("eth: checkpoint is for chain %q, config says %q", ck.Name, c.cfg.Name)
	}
	if got := c.st.Root(); got != ck.StateRoot {
		return fmt.Errorf("eth: loaded state root %x does not match checkpoint %x", got[:8], ck.StateRoot[:8])
	}
	head := &Block{
		Number:    ck.HeadNumber,
		Time:      ck.HeadTime,
		Hash:      ck.HeadHash,
		BaseFee:   new(big.Int).SetBytes(ck.HeadBaseFee),
		StateRoot: ck.StateRoot,
	}
	c.blocks = []*Block{head}
	c.baseFee = new(big.Int).SetBytes(ck.BaseFee)
	c.burned = new(big.Int).SetBytes(ck.Burned)
	c.tipped = new(big.Int).SetBytes(ck.Tipped)
	c.justified = ck.Justified
	c.finalized = ck.Finalized
	c.spikeBlocksLeft = ck.SpikeBlocksLeft
	c.rcptAcc = ck.RcptAcc
	c.rcptCount = ck.RcptCount
	c.clock.AdvanceTo(ck.Clock)
	c.rng.SetState(ck.Rng)
	c.retention = ck.Retention
	c.mempool = nil
	for i := range ck.Mempool {
		p := &ck.Mempool[i]
		c.mempool = append(c.mempool, &pendingTx{tx: p.Tx, submitted: p.Submitted, delayed: p.Delayed})
	}
	return nil
}

// Fund credits addr out of thin air, like a genesis allocation. Soak
// harnesses use it with keys they derive themselves, so account setup
// never consumes the chain's own rng stream — which a resumed run could
// not replay.
func (c *Chain) Fund(addr chain.Address, amount *big.Int) {
	if amount != nil && amount.Sign() > 0 {
		c.st.AddBalance(addr, amount)
	}
}
