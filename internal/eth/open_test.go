package eth

import (
	"encoding/json"
	"math/big"
	"testing"

	"agnopol/internal/chain"
	"agnopol/internal/faults"
	"agnopol/internal/mstate"
	"agnopol/internal/mstate/diskstore"
	"agnopol/internal/polcrypto"
)

// fundedAccount derives an account from a soak-style key stream and
// funds it via Fund, never touching the chain rng.
func fundedAccount(c *Chain, rng *chain.Rand, eth int64) *Account {
	kp := polcrypto.MustGenerateKeyPair(rng)
	addr := chain.AddressFromPublicKey(kp.Public)
	c.Fund(addr, new(big.Int).Mul(big.NewInt(eth), big.NewInt(1e18)))
	return &Account{Key: kp, Address: addr}
}

func transfer(t *testing.T, c *Chain, from, to *Account, nonce uint64) {
	t.Helper()
	tx := &Tx{
		From:     from.Address,
		Nonce:    nonce,
		To:       &to.Address,
		Value:    big.NewInt(1_000),
		GasLimit: 50_000,
		MaxFee:   new(big.Int).Mul(c.BaseFee(), big.NewInt(3)),
		MaxTip:   big.NewInt(2_000_000_000),
	}
	tx.Sign(from)
	if _, err := c.Submit(tx); err != nil {
		t.Fatalf("submit nonce %d: %v", nonce, err)
	}
}

// The core restart property: run → checkpoint (with the mempool
// non-empty) → commit state → reopen from the root → continue, and the
// resumed chain's digest and state root stay bit-identical to the chain
// that never stopped. The checkpoint crosses a JSON round-trip, exactly
// as it does inside a diskstore manifest.
func TestOpenContinuesBitIdentically(t *testing.T) {
	for _, backend := range []string{"memstore", "diskstore"} {
		t.Run(backend, func(t *testing.T) {
			var store mstate.NodeStore
			var disk *diskstore.Store
			if backend == "memstore" {
				store = mstate.NewMemStore()
			} else {
				d, err := diskstore.Open(t.TempDir(), diskstore.Options{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				disk = d
				store = d
				defer d.Close()
			}

			cfg := Goerli()
			const seed = 77
			ref := NewChain(cfg, seed)
			keyRng := chain.NewRand(seed).Fork("test:keys")
			alice := fundedAccount(ref, keyRng, 1000)
			bob := fundedAccount(ref, keyRng, 1000)

			nonce := uint64(0)
			for i := 0; i < 5; i++ {
				transfer(t, ref, alice, bob, nonce)
				nonce++
				ref.Step()
			}
			// Leave a transaction in flight so the checkpoint carries a
			// non-empty mempool.
			transfer(t, ref, alice, bob, nonce)
			nonce++

			ck, err := ref.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if len(ck.Mempool) == 0 {
				t.Fatal("checkpoint should carry the in-flight transaction")
			}
			root, err := ref.CommitState(store)
			if err != nil {
				t.Fatal(err)
			}
			if chain.Hash32(root) != ck.StateRoot {
				t.Fatalf("committed root %x != checkpoint state root %x", root[:8], ck.StateRoot[:8])
			}
			blob, err := json.Marshal(ck)
			if err != nil {
				t.Fatal(err)
			}
			if disk != nil {
				if err := disk.Commit(root, blob); err != nil {
					t.Fatal(err)
				}
			}
			var ck2 Checkpoint
			if err := json.Unmarshal(blob, &ck2); err != nil {
				t.Fatal(err)
			}

			resumed, err := Open(Options{Config: cfg, Seed: seed, Store: store, Root: root, Checkpoint: &ck2})
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Digest() != ref.Digest() {
				t.Fatal("digest diverges immediately after restore")
			}

			// Identical continuation on both chains.
			for i := 0; i < 5; i++ {
				ref.Step()
				resumed.Step()
				transfer(t, ref, alice, bob, nonce)
				transfer(t, resumed, alice, bob, nonce)
				nonce++
			}
			for i := 0; i < 3; i++ {
				ref.Step()
				resumed.Step()
			}

			if ref.Digest() != resumed.Digest() {
				t.Fatalf("digest diverged: ref %x, resumed %x", ref.Digest(), resumed.Digest())
			}
			if ref.StateRoot() != resumed.StateRoot() {
				t.Fatal("state root diverged")
			}
			if ref.Balance(bob.Address).Base.Cmp(resumed.Balance(bob.Address).Base) != 0 {
				t.Fatal("balances diverged")
			}
		})
	}
}

func TestOpenInMemoryMatchesNewChain(t *testing.T) {
	cfg := Goerli()
	a := NewChain(cfg, 5)
	b, err := Open(Options{Config: cfg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a.Step()
		b.Step()
	}
	if a.Digest() != b.Digest() {
		t.Fatal("Open without a store must behave exactly like NewChain")
	}
}

func TestOpenRejectsMisuse(t *testing.T) {
	cfg := Goerli()
	if _, err := Open(Options{Config: cfg, Seed: 1, Root: mstate.Hash{9}}); err == nil {
		t.Fatal("root without store must be rejected")
	}
	store := mstate.NewMemStore()
	c := NewChain(cfg, 1)
	c.Step()
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	root, err := c.CommitState(store)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint for a different chain name.
	bad := *ck
	bad.Name = "not-this-chain"
	if _, err := Open(Options{Config: cfg, Seed: 1, Store: store, Root: root, Checkpoint: &bad}); err == nil {
		t.Fatal("mismatched chain name must be rejected")
	}
	// Checkpoint whose state root does not match the loaded trie.
	bad = *ck
	bad.StateRoot = chain.Hash32{1, 2, 3}
	if _, err := Open(Options{Config: cfg, Seed: 1, Store: store, Root: root, Checkpoint: &bad}); err == nil {
		t.Fatal("state-root mismatch must be rejected")
	}
}

func TestCheckpointRefusesFaultInjection(t *testing.T) {
	c := NewChain(Goerli(), 3)
	c.SetFaults(faults.NewInjector(faults.Uniform(0.1), 3, nil))
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("checkpoint with fault injection must be refused")
	}
}
