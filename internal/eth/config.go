package eth

import (
	"math/big"
	"time"

	"agnopol/internal/chain"
)

// Config parameterizes one Ethereum-family network. The presets below
// reproduce the regimes the paper measured in autumn 2022.
type Config struct {
	Name string
	Unit chain.Unit

	// SlotDuration is the block interval (12 s mainline, 2 s Polygon).
	SlotDuration time.Duration
	// BlockGasLimit and the derived target (limit/2) drive EIP-1559.
	BlockGasLimit uint64
	// InitialBaseFee in wei.
	InitialBaseFee *big.Int
	// MinBaseFee floors the EIP-1559 decay.
	MinBaseFee *big.Int
	// DefaultTip is the priority fee the simulated clients attach
	// (the paper used 1.5 gwei).
	DefaultTip *big.Int

	// Background traffic: total demand per block is lognormal with the
	// given mean (gas) and sigma; its tips are exponential with mean
	// TipScale, so a client tx with tip T is outbid by a fraction
	// exp(-T/TipScale) of the demand.
	CongestionMeanGas float64
	CongestionSigma   float64
	// CongestionElasticity makes demand respond to the base fee: the
	// demand mean scales by (InitialBaseFee/baseFee)^elasticity — the
	// fee-market equilibrium that keeps EIP-1559 mean-reverting instead
	// of drifting during long runs.
	CongestionElasticity float64
	TipScale             *big.Int
	// SpikeProb is the per-block probability of *entering* a congestion
	// spike that multiplies demand by SpikeFactor. Spikes persist for a
	// geometric number of blocks with mean SpikeBlocksMean — congestion
	// on real networks comes in episodes, which is what produces the
	// occasional very slow user in the paper's figures.
	SpikeProb       float64
	SpikeFactor     float64
	SpikeBlocksMean float64

	// Confirmations the client waits after inclusion before considering a
	// transaction final.
	Confirmations int
	// RPCLatencyMean/Jitter model the node-provider round trip
	// (Infura/Quicknode in the paper).
	RPCLatencyMean   time.Duration
	RPCLatencyJitter time.Duration
	// APIExtraDelayMean models the connector's event-subscription poll
	// after API calls (the Reach JS stdlib polls for the call's effects
	// before returning; see DESIGN.md).
	APIExtraDelayMean   time.Duration
	APIExtraDelayJitter time.Duration

	// Proof-of-stake parameters.
	ValidatorCount int
	CommitteeSize  int
	// SlotsPerEpoch for checkpoint finality.
	SlotsPerEpoch int
}

func gwei(f float64) *big.Int {
	v := new(big.Float).Mul(big.NewFloat(f), big.NewFloat(1e9))
	out, _ := v.Int(nil)
	return out
}

// Goerli is the primary Ethereum testnet preset: 12 s slots, busy and
// bursty, base fee in the 8-gwei range of the paper's runs.
func Goerli() Config {
	return Config{
		Name:                 "goerli",
		Unit:                 chain.UnitETH,
		SlotDuration:         12 * time.Second,
		BlockGasLimit:        30_000_000,
		InitialBaseFee:       gwei(8),
		MinBaseFee:           gwei(0.05),
		DefaultTip:           gwei(1.5),
		CongestionMeanGas:    15_000_000,
		CongestionSigma:      0.5,
		CongestionElasticity: 1.5,
		TipScale:             gwei(4.0),
		SpikeProb:            0.05,
		SpikeFactor:          3.0,
		SpikeBlocksMean:      2.5,
		Confirmations:        1,
		RPCLatencyMean:       900 * time.Millisecond,
		RPCLatencyJitter:     600 * time.Millisecond,
		APIExtraDelayMean:    10 * time.Second,
		APIExtraDelayJitter:  4 * time.Second,
		ValidatorCount:       64,
		CommitteeSize:        16,
		SlotsPerEpoch:        32,
	}
}

// Ropsten is the deprecated, erratic testnet of Fig. 5.2: long waits, huge
// variance.
func Ropsten() Config {
	c := Goerli()
	c.Name = "ropsten"
	c.CongestionMeanGas = 14_800_000
	c.CongestionSigma = 0.8
	c.SpikeProb = 0.12
	c.SpikeFactor = 3.0
	c.SpikeBlocksMean = 5
	c.APIExtraDelayMean = 14 * time.Second
	c.APIExtraDelayJitter = 8 * time.Second
	return c
}

// PolygonMumbai is the layer-2 preset: 2 s blocks, cheap gas, more
// confirmations demanded by clients, still congestion-sensitive.
func PolygonMumbai() Config {
	return Config{
		Name:                 "polygon-mumbai",
		Unit:                 chain.UnitMATIC,
		SlotDuration:         2 * time.Second,
		BlockGasLimit:        30_000_000,
		InitialBaseFee:       gwei(0.35),
		MinBaseFee:           gwei(0.01),
		DefaultTip:           gwei(0.05),
		CongestionMeanGas:    9_000_000,
		CongestionSigma:      0.5,
		CongestionElasticity: 1.5,
		TipScale:             gwei(0.1),
		SpikeProb:            0.04,
		SpikeFactor:          4.5,
		SpikeBlocksMean:      3,
		Confirmations:        2,
		RPCLatencyMean:       700 * time.Millisecond,
		RPCLatencyJitter:     400 * time.Millisecond,
		APIExtraDelayMean:    11 * time.Second,
		APIExtraDelayJitter:  2 * time.Second,
		ValidatorCount:       32,
		CommitteeSize:        8,
		SlotsPerEpoch:        64,
	}
}
