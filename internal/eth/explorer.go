package eth

import (
	"encoding/hex"
	"fmt"
	"math/big"
	"strings"
	"time"

	"agnopol/internal/chain"
)

// Explorer support — the EtherScan view of Fig. 3.1: "this exploration
// allows everybody to look up the history of a specific wallet or contract
// address". The chain records every executed transaction; HistoryOf
// reconstructs the per-address table and FormatHistory renders it in the
// figure's newest-first layout.

// TxRecord is one row of an address's history.
type TxRecord struct {
	Hash     chain.Hash32
	Method   string // 0x-prefixed selector, or "Contract Creation"
	Block    uint64
	Time     time.Duration
	From     chain.Address
	To       chain.Address
	Contract bool // true when To is the created contract
	Value    *big.Int
	Fee      chain.Amount
	Reverted bool
}

// recordTx is called by execute() to append to the history log.
func (c *Chain) recordTx(tx *Tx, rcpt *chain.Receipt, target chain.Address, isCreate bool) {
	rec := TxRecord{
		Hash:     tx.Hash(),
		Block:    rcpt.BlockNumber,
		Time:     rcpt.Included,
		From:     tx.From,
		To:       target,
		Contract: isCreate,
		Value:    new(big.Int).Set(tx.Value),
		Fee:      rcpt.Fee,
		Reverted: rcpt.Reverted,
	}
	if isCreate {
		rec.Method = "Contract Creation"
	} else if len(tx.Data) >= 4 {
		rec.Method = "0x" + hex.EncodeToString(tx.Data[:4])
	} else {
		rec.Method = "Transfer"
	}
	c.history = append(c.history, rec)
}

// HistoryOf returns every transaction touching an address, oldest first.
func (c *Chain) HistoryOf(addr chain.Address) []TxRecord {
	var out []TxRecord
	for _, r := range c.history {
		if r.From == addr || r.To == addr {
			out = append(out, r)
		}
	}
	return out
}

// FormatHistory renders the Fig. 3.1 table: newest transactions on top,
// read bottom-up from contract creation.
func FormatHistory(addr chain.Address, records []TxRecord, unit chain.Unit) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Contract %s\n", addr)
	fmt.Fprintf(&sb, "%-14s %-20s %-7s %-14s %-14s %12s %14s\n",
		"Txn Hash", "Method", "Block", "From", "To", "Value", "Txn Fee")
	for i := len(records) - 1; i >= 0; i-- {
		r := records[i]
		status := ""
		if r.Reverted {
			status = " (reverted)"
		}
		fmt.Fprintf(&sb, "%-14s %-20s %-7d %-14s %-14s %9.4g %s %.8f%s\n",
			short(r.Hash.String()), r.Method, r.Block,
			short(r.From.String()), short(r.To.String()),
			chain.NewAmount(r.Value, unit).Tokens(), unit.Name,
			r.Fee.Tokens(), status)
	}
	return sb.String()
}

func short(s string) string {
	if len(s) <= 12 {
		return s
	}
	return s[:12] + "…"
}
