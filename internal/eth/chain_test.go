package eth

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
)

func newTestChain(t *testing.T) *Chain {
	t.Helper()
	cfg := Goerli()
	// Calm network for deterministic unit tests.
	cfg.CongestionMeanGas = 1_000_000
	cfg.SpikeProb = 0
	return NewChain(cfg, 1)
}

func eth(f float64) *big.Int {
	v, _ := new(big.Float).Mul(big.NewFloat(f), big.NewFloat(1e18)).Int(nil)
	return v
}

func TestSimplePaymentFlow(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	bobAddr := chain.AddressFromBytes([]byte("bob"))
	tx := cl.NewTx(alice, &bobAddr, big.NewInt(12345), nil, 21000)
	rcpt, err := cl.SubmitAndWait(tx)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Reverted {
		t.Fatalf("payment reverted: %s", rcpt.RevertMsg)
	}
	if rcpt.GasUsed != 21000 {
		t.Fatalf("gas = %d, want 21000", rcpt.GasUsed)
	}
	if got := c.Balance(bobAddr).Base.Int64(); got != 12345 {
		t.Fatalf("bob balance %d", got)
	}
	if rcpt.Latency() <= 0 {
		t.Fatal("latency must be positive")
	}
	// Sender paid value + fee.
	fee := rcpt.Fee.Base
	want := new(big.Int).Sub(eth(1), big.NewInt(12345))
	want.Sub(want, fee)
	if got := c.Balance(alice.Address).Base; got.Cmp(want) != 0 {
		t.Fatalf("alice balance %s, want %s", got, want)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	to := chain.AddressFromBytes([]byte("x"))

	// Unsigned/forged signature.
	tx := cl.NewTx(alice, &to, big.NewInt(1), nil, 21000)
	tx.Sig[0] ^= 1
	if _, err := c.Submit(tx); err == nil {
		t.Fatal("tampered signature accepted")
	}

	// Wrong sender address.
	mallory := c.NewAccount(eth(1))
	tx = cl.NewTx(alice, &to, big.NewInt(1), nil, 21000)
	tx.From = mallory.Address
	tx.Sign(alice)
	if _, err := c.Submit(tx); err == nil {
		t.Fatal("address/key mismatch accepted")
	}

	// Gas below intrinsic.
	tx = cl.NewTx(alice, &to, big.NewInt(1), []byte{1, 2, 3}, 21000)
	if _, err := c.Submit(tx); !errors.Is(err, ErrGasLimitTooLow) {
		t.Fatalf("err = %v, want gas too low", err)
	}

	// Insufficient balance for gas + value.
	poor := c.NewAccount(big.NewInt(1000))
	tx = cl.NewTx(poor, &to, big.NewInt(1), nil, 21000)
	if _, err := c.Submit(tx); !errors.Is(err, ErrInsufficientEth) {
		t.Fatalf("err = %v, want insufficient", err)
	}

	// Nonce reuse.
	tx = cl.NewTx(alice, &to, big.NewInt(1), nil, 21000)
	if _, err := cl.SubmitAndWait(tx); err != nil {
		t.Fatal(err)
	}
	replay := *tx
	if _, err := c.Submit(&replay); !errors.Is(err, ErrNonceTooLow) {
		t.Fatalf("err = %v, want nonce too low", err)
	}
}

// TestBaseFeeBoundedPerBlock: EIP-1559 moves the base fee by at most 12.5%
// per block in either direction.
func TestBaseFeeBoundedPerBlock(t *testing.T) {
	cfg := Goerli()
	cfg.CongestionSigma = 1.2
	cfg.SpikeProb = 0.3
	cfg.SpikeFactor = 4
	c := NewChain(cfg, 3)
	prev := c.BaseFee()
	for i := 0; i < 300; i++ {
		c.Step()
		cur := c.BaseFee()
		up := new(big.Int).Div(new(big.Int).Mul(prev, big.NewInt(9)), big.NewInt(8))
		down := new(big.Int).Div(new(big.Int).Mul(prev, big.NewInt(7)), big.NewInt(8))
		if cur.Cmp(up) > 0 {
			t.Fatalf("block %d: base fee rose more than 12.5%%: %s -> %s", i, prev, cur)
		}
		// Allow one wei of rounding slack on the way down.
		down.Sub(down, big.NewInt(1))
		if cur.Cmp(down) < 0 && cur.Cmp(cfg.MinBaseFee) != 0 {
			t.Fatalf("block %d: base fee fell more than 12.5%%: %s -> %s", i, prev, cur)
		}
		prev = cur
	}
}

func TestBaseFeeRespondsToDemand(t *testing.T) {
	cfg := Goerli()
	cfg.CongestionMeanGas = 28_000_000 // far above the 15M target
	cfg.CongestionSigma = 0.05
	cfg.CongestionElasticity = 0
	cfg.SpikeProb = 0
	c := NewChain(cfg, 4)
	start := c.BaseFee()
	for i := 0; i < 30; i++ {
		c.Step()
	}
	if c.BaseFee().Cmp(start) <= 0 {
		t.Fatal("base fee did not rise under sustained demand")
	}

	cfg.CongestionMeanGas = 2_000_000 // far below target
	c2 := NewChain(cfg, 5)
	start = c2.BaseFee()
	for i := 0; i < 30; i++ {
		c2.Step()
	}
	if c2.BaseFee().Cmp(start) >= 0 {
		t.Fatal("base fee did not fall under low demand")
	}
}

func TestAttestationsVerify(t *testing.T) {
	c := newTestChain(t)
	for i := 0; i < 5; i++ {
		blk := c.Step()
		if err := c.VerifyBlock(blk); err != nil {
			t.Fatalf("honest block rejected: %v", err)
		}
		if len(blk.Attestations) == 0 {
			t.Fatal("no attestations")
		}
		// Tamper with one attestation.
		bad := *blk
		bad.Attestations = append([]Attestation(nil), blk.Attestations...)
		bad.Attestations[0].Signature = append([]byte(nil), bad.Attestations[0].Signature...)
		bad.Attestations[0].Signature[0] ^= 1
		if err := c.VerifyBlock(&bad); err == nil {
			t.Fatal("tampered attestation accepted")
		}
		// Drop signatures below the 2/3 threshold.
		bad2 := *blk
		bad2.Attestations = blk.Attestations[:len(blk.Attestations)/3]
		if err := c.VerifyBlock(&bad2); err == nil {
			t.Fatal("sub-threshold attestations accepted")
		}
	}
}

func TestProposerSelectionIsStakeWeightedAndDeterministic(t *testing.T) {
	c := newTestChain(t)
	p1 := c.pickProposer(c.Head().Hash, 1)
	p2 := c.pickProposer(c.Head().Hash, 1)
	if p1 != p2 {
		t.Fatal("proposer selection not deterministic per slot")
	}
	// Different slots usually give different proposers over many slots.
	seen := map[chain.Address]bool{}
	for s := uint64(0); s < 64; s++ {
		seen[c.pickProposer(c.Head().Hash, s).Address] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct proposers over 64 slots", len(seen))
	}
}

func TestFeesBurnedAndTipped(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	to := chain.AddressFromBytes([]byte("x"))
	rcpt, err := cl.SubmitAndWait(cl.NewTx(alice, &to, big.NewInt(1), nil, 21000))
	if err != nil {
		t.Fatal(err)
	}
	burned, tipped := c.BurnedAndTipped()
	sum := new(big.Int).Add(burned, tipped)
	if sum.Cmp(rcpt.Fee.Base) != 0 {
		t.Fatalf("burned+tipped = %s, fee = %s", sum, rcpt.Fee.Base)
	}
	if burned.Sign() <= 0 || tipped.Sign() <= 0 {
		t.Fatalf("burned=%s tipped=%s, both must be positive", burned, tipped)
	}
}

func TestContractDeployAndCallThroughChain(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))

	// Code: return 42.
	a := evm.NewAssembler()
	a.PushUint(42).PushUint(0).Op(evm.MSTORE).PushUint(32).PushUint(0).Op(evm.RETURN)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	rcpt, addr, err := cl.Deploy(alice, code, nil, nil, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.GasUsed <= evm.GasTransaction+evm.GasTxCreate {
		t.Fatalf("deploy gas %d too low", rcpt.GasUsed)
	}
	stored, ok := c.ContractCode(addr)
	if !ok || string(stored) != string(code) {
		t.Fatal("code not stored at contract address")
	}

	callRcpt, err := cl.Call(alice, addr, nil, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(big.Int).SetBytes(callRcpt.ReturnValue).Uint64(); got != 42 {
		t.Fatalf("call returned %d", got)
	}

	// Views are free and instantaneous.
	before := c.Now()
	out, err := cl.View(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(big.Int).SetBytes(out).Uint64(); got != 42 {
		t.Fatalf("view returned %d", got)
	}
	if c.Now() != before {
		t.Fatal("view advanced the clock")
	}
}

func TestRevertedDeployKeepsNoCode(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	a := evm.NewAssembler()
	a.PushUint(0).PushUint(0).Op(evm.REVERT)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	_, addr, err := cl.Deploy(alice, code, nil, nil, 100000)
	if err == nil {
		t.Fatal("reverting deployment succeeded")
	}
	if _, ok := c.ContractCode(addr); ok {
		t.Fatal("reverted deployment left code behind")
	}
}

func TestCongestionDelaysInclusion(t *testing.T) {
	busy := Goerli()
	busy.CongestionMeanGas = 40_000_000
	busy.CongestionElasticity = 0
	busy.CongestionSigma = 0.3
	busy.APIExtraDelayMean = 0
	calm := busy
	calm.CongestionMeanGas = 1_000_000

	latency := func(cfg Config) float64 {
		c := NewChain(cfg, 9)
		cl := NewClient(c)
		alice := c.NewAccount(eth(10))
		sum := 0.0
		for i := 0; i < 10; i++ {
			to := chain.AddressFromBytes([]byte{byte(i)})
			rcpt, err := cl.SubmitAndWait(cl.NewTx(alice, &to, big.NewInt(1), nil, 21000))
			if err != nil {
				t.Fatal(err)
			}
			sum += rcpt.Latency().Seconds()
		}
		return sum / 10
	}
	if lb, lc := latency(busy), latency(calm); lb <= lc {
		t.Fatalf("busy network latency %.1fs not above calm %.1fs", lb, lc)
	}
}

func TestFinalityAdvances(t *testing.T) {
	c := newTestChain(t)
	for i := 0; i < 2*c.cfg.SlotsPerEpoch+1; i++ {
		c.Step()
	}
	if c.FinalizedBlock() == 0 {
		t.Fatal("finality never advanced")
	}
	if c.FinalizedBlock() >= c.Head().Number {
		t.Fatal("finalized beyond head")
	}
}

func TestPackSplitDeployData(t *testing.T) {
	err := quick.Check(func(code, ctor []byte) bool {
		gotCode, gotCtor := SplitDeployData(PackDeployData(code, ctor))
		return string(gotCode) == string(code) && string(gotCtor) == string(ctor)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	runOnce := func() []float64 {
		c := NewChain(Goerli(), 42)
		cl := NewClient(c)
		alice := c.NewAccount(eth(10))
		var out []float64
		for i := 0; i < 5; i++ {
			to := chain.AddressFromBytes([]byte{byte(i)})
			rcpt, err := cl.SubmitAndWait(cl.NewTx(alice, &to, big.NewInt(1), nil, 21000))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rcpt.Latency().Seconds())
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at tx %d: %v vs %v", i, a[i], b[i])
		}
	}
}
