package eth

import (
	"math/big"
	"testing"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
)

func wordKey(v uint64) chain.Hash32 {
	var h chain.Hash32
	new(big.Int).SetUint64(v).FillBytes(h[:])
	return h
}

func TestViewDoesNotMutateState(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	// Contract: SSTORE(1, 7) then return 1 — a view that tries to write.
	a := evm.NewAssembler()
	a.PushUint(7).PushUint(1).Op(evm.SSTORE)
	a.PushUint(1).PushUint(0).Op(evm.MSTORE).PushUint(32).PushUint(0).Op(evm.RETURN)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	_, addr, err := cl.Deploy(alice, code, nil, nil, 300000)
	if err != nil {
		t.Fatal(err)
	}
	// Note: deployment executed the code once (ctor semantics), writing
	// slot 1. Clear it so the view's write is observable.
	c.st.SetStorage(addr, wordKey(1), chain.Hash32{})
	if _, err := cl.View(addr, nil); err != nil {
		t.Fatal(err)
	}
	if c.StorageAt(addr, wordKey(1)) != (chain.Hash32{}) {
		t.Fatal("view write leaked into chain state")
	}
}

func TestPendingNonceSeesMempool(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	to := chain.AddressFromBytes([]byte("x"))
	if n := c.PendingNonce(alice.Address); n != 0 {
		t.Fatalf("fresh account nonce %d", n)
	}
	tx1 := cl.NewTx(alice, &to, big.NewInt(1), nil, 21000)
	if _, err := c.Submit(tx1); err != nil {
		t.Fatal(err)
	}
	if n := c.PendingNonce(alice.Address); n != 1 {
		t.Fatalf("pending nonce %d, want 1", n)
	}
	// Second tx queued with the next nonce; both land in one block.
	tx2 := cl.NewTx(alice, &to, big.NewInt(2), nil, 21000)
	if tx2.Nonce != 1 {
		t.Fatalf("tx2 nonce %d", tx2.Nonce)
	}
	if _, err := c.Submit(tx2); err != nil {
		t.Fatal(err)
	}
	blk := c.Step()
	if len(blk.TxHashes) != 2 {
		t.Fatalf("block includes %d txs, want both", len(blk.TxHashes))
	}
	if got := c.Balance(to).Base.Int64(); got != 3 {
		t.Fatalf("recipient got %d", got)
	}
}

func TestPolygonCheaperAndFasterThanGoerli(t *testing.T) {
	run := func(cfg Config) (latency float64, feeWei *big.Int) {
		cfg.APIExtraDelayMean = 0
		cfg.APIExtraDelayJitter = 0
		c := NewChain(cfg, 5)
		cl := NewClient(c)
		alice := c.NewAccount(eth(10))
		to := chain.AddressFromBytes([]byte("y"))
		rcpt, err := cl.SubmitAndWait(cl.NewTx(alice, &to, big.NewInt(1), nil, 21000))
		if err != nil {
			t.Fatal(err)
		}
		return rcpt.Latency().Seconds(), rcpt.Fee.Base
	}
	gLat, gFee := run(Goerli())
	pLat, pFee := run(PolygonMumbai())
	if pLat >= gLat {
		t.Fatalf("polygon tx latency %.1fs not below goerli %.1fs", pLat, gLat)
	}
	if pFee.Cmp(gFee) >= 0 {
		t.Fatalf("polygon fee %s not below goerli %s", pFee, gFee)
	}
}

func TestAPIExtraDelayAdvancesClock(t *testing.T) {
	c := NewChain(Goerli(), 6)
	cl := NewClient(c)
	before := c.Now()
	d := cl.APIExtraDelay()
	if d <= 0 {
		t.Fatal("no delay sampled")
	}
	if c.Now()-before != d {
		t.Fatal("delay not applied to the clock")
	}
}

func TestSpikeEpisodesPersist(t *testing.T) {
	cfg := Goerli()
	cfg.SpikeProb = 1 // enter a spike immediately
	cfg.SpikeBlocksMean = 4
	c := NewChain(cfg, 7)
	c.Step()
	if c.spikeBlocksLeft == 0 {
		// With prob 1 we must be inside an episode (unless it drew
		// length 1, in which case a new one starts next block anyway).
		c.Step()
		if c.spikeBlocksLeft == 0 {
			c.Step()
		}
	}
	// Just assert the field is exercised; persistence is statistical.
	if c.Head().Number < 1 {
		t.Fatal("no blocks produced")
	}
}

func TestRevertedCallStillChargesFees(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	// The contract reverts only when calldata is present, so deployment
	// (which executes the code with empty ctor calldata) succeeds and
	// later calls revert.
	b := evm.NewAssembler()
	b.Op(evm.CALLDATASIZE).PushLabel("rev").Op(evm.JUMPI)
	b.Op(evm.STOP)
	b.Label("rev").PushUint(0).PushUint(0).Op(evm.REVERT)
	code, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	_, addr, err := cl.Deploy(alice, code, nil, nil, 200000)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Balance(alice.Address).Base
	rcpt, err := cl.Call(alice, addr, []byte{1}, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.Reverted {
		t.Fatal("call should revert")
	}
	after := c.Balance(alice.Address).Base
	if after.Cmp(before) >= 0 {
		t.Fatal("reverted call did not charge fees")
	}
	if diff := new(big.Int).Sub(before, after); diff.Cmp(rcpt.Fee.Base) != 0 {
		t.Fatalf("charged %s, receipt fee %s", diff, rcpt.Fee.Base)
	}
}

func TestUnderpricedTxWaitsForBaseFeeDrop(t *testing.T) {
	cfg := Goerli()
	cfg.CongestionMeanGas = 1_000_000 // calm: base fee decays fast
	cfg.SpikeProb = 0
	c := NewChain(cfg, 8)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	to := chain.AddressFromBytes([]byte("z"))
	// Cap the max fee below the current base fee: the tx must wait until
	// EIP-1559 decay brings the base fee under the cap.
	tx := cl.NewTx(alice, &to, big.NewInt(1), nil, 21000)
	tx.MaxFee = new(big.Int).Div(c.BaseFee(), big.NewInt(2))
	tx.MaxTip = new(big.Int).Set(tx.MaxFee)
	tx.Sign(alice)
	rcpt, err := cl.SubmitAndWait(tx)
	if err != nil {
		t.Fatal(err)
	}
	// Base fee halves in ≥ log(2)/log(1.125) ≈ 6 blocks of decay.
	if rcpt.BlockNumber < 4 {
		t.Fatalf("capped tx included at block %d, expected to wait for decay", rcpt.BlockNumber)
	}
}
