package hypercube

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewValidatesDimension(t *testing.T) {
	for _, r := range []int{0, -1, 21} {
		if _, err := New(r); err == nil {
			t.Errorf("New(%d) accepted", r)
		}
	}
	n, err := New(6)
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() != 64 {
		t.Fatalf("size %d, want 64", n.Size())
	}
}

func TestNeighborsDifferByOneBit(t *testing.T) {
	n := MustNew(5)
	for id := uint64(0); id < uint64(n.Size()); id += 7 {
		neigh := n.Neighbors(id)
		if len(neigh) != 5 {
			t.Fatalf("node %d has %d neighbors, want 5", id, len(neigh))
		}
		for _, m := range neigh {
			if bits.OnesCount64(id^m) != 1 {
				t.Fatalf("nodes %d and %d differ in %d bits", id, m, bits.OnesCount64(id^m))
			}
		}
	}
}

// TestRouteIsGreedyAndBounded: the path length equals the Hamming distance,
// hence is at most r, and every hop flips exactly one bit (§1.3).
func TestRouteIsGreedyAndBounded(t *testing.T) {
	n := MustNew(8)
	err := quick.Check(func(a, b uint8) bool {
		from, to := uint64(a), uint64(b)
		path := n.Route(from, to)
		if path[0] != from || path[len(path)-1] != to {
			return false
		}
		if len(path)-1 != bits.OnesCount64(from^to) {
			return false
		}
		for i := 1; i < len(path); i++ {
			if bits.OnesCount64(path[i-1]^path[i]) != 1 {
				return false
			}
		}
		return len(path)-1 <= n.Dimension()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	n := MustNew(6)
	entry := &Entry{ContractID: "goerli/0xabc", OLC: "8FPHF8VV+X2", CIDs: []string{"bafy1"}}
	hops, err := n.Put(3, 42, "8FPHF8VV+X2", entry)
	if err != nil {
		t.Fatal(err)
	}
	if want := bits.OnesCount64(3 ^ 42); hops != want {
		t.Fatalf("put took %d hops, want %d", hops, want)
	}
	got, _, ok, err := n.Get(60, 42, "8FPHF8VV+X2")
	if err != nil || !ok {
		t.Fatalf("get failed: ok=%v err=%v", ok, err)
	}
	if got.ContractID != entry.ContractID || len(got.CIDs) != 1 {
		t.Fatalf("got %+v", got)
	}
	// Mutating the returned entry must not affect stored state.
	got.CIDs[0] = "tampered"
	again, _, _, err := n.Get(0, 42, "8FPHF8VV+X2")
	if err != nil {
		t.Fatal(err)
	}
	if again.CIDs[0] != "bafy1" {
		t.Fatal("stored entry was mutated through the returned copy")
	}
}

func TestGetMissingKeyword(t *testing.T) {
	n := MustNew(4)
	_, _, ok, err := n.Get(0, 5, "nothing")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing keyword reported found")
	}
}

func TestIDRangeChecks(t *testing.T) {
	n := MustNew(4)
	if _, err := n.Put(16, 0, "k", &Entry{}); err == nil {
		t.Fatal("via out of range accepted")
	}
	if _, err := n.Put(0, 16, "k", &Entry{}); err == nil {
		t.Fatal("target out of range accepted")
	}
	if _, _, _, err := n.Get(0, 99, "k"); err == nil {
		t.Fatal("get target out of range accepted")
	}
}

func TestAppendCIDCreatesAndAppends(t *testing.T) {
	n := MustNew(5)
	if _, err := n.AppendCID(0, 9, "area", "ctc-1", "bafyA"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AppendCID(1, 9, "area", "ctc-1", "bafyB"); err != nil {
		t.Fatal(err)
	}
	e, _, ok, err := n.Get(0, 9, "area")
	if err != nil || !ok {
		t.Fatal("entry missing after AppendCID")
	}
	if len(e.CIDs) != 2 || e.CIDs[0] != "bafyA" || e.CIDs[1] != "bafyB" {
		t.Fatalf("CIDs = %v", e.CIDs)
	}
	if e.ContractID != "ctc-1" {
		t.Fatalf("contract ID %q", e.ContractID)
	}
}

func TestRangeQueryHammingBall(t *testing.T) {
	n := MustNew(4)
	// Store at nodes 0 (distance 0), 1 (distance 1), 3 (distance 2), 15
	// (distance 4) relative to target 0.
	for _, id := range []uint64{0, 1, 3, 15} {
		if _, err := n.Put(0, id, "k", &Entry{ContractID: "c", OLC: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := n.RangeQuery(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("range query ≤2 hops returned %d entries, want 3", len(got))
	}
	all, err := n.RangeQuery(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("range query ≤4 hops returned %d entries, want 4", len(all))
	}
}

func TestStatsAverageHops(t *testing.T) {
	n := MustNew(6)
	if _, err := n.Put(0, 63, "a", &Entry{}); err != nil { // 6 hops
		t.Fatal(err)
	}
	if _, _, _, err := n.Get(63, 63, "a"); err != nil { // 0 hops
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Lookups != 2 {
		t.Fatalf("lookups %d, want 2", s.Lookups)
	}
	if s.AvgHops != 3 {
		t.Fatalf("avg hops %v, want 3", s.AvgHops)
	}
	if s.MaxHops != 6 {
		t.Fatalf("max hops %d, want 6", s.MaxHops)
	}
}

func TestEntryJSONMatchesThesisShape(t *testing.T) {
	e := &Entry{ContractID: "app/5", OLC: "8FPH+XX", CIDs: []string{"bafy1", "bafy2"}}
	data, err := e.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"contractId":"app/5","olc":"8FPH+XX","cids":["bafy1","bafy2"]}`
	if string(data) != want {
		t.Fatalf("JSON = %s, want %s", data, want)
	}
}
