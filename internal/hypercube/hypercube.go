// Package hypercube implements the DHT with hypercube topology the paper
// stores validated reports in (§1.3, §2.5; Zichichi et al.'s "hypfs").
//
// The network has 2^r logical nodes. Node IDs are r-bit strings; two nodes
// are neighbours exactly when their IDs differ in one bit, so greedy routing
// (flip the most significant differing bit) reaches any node in at most r
// hops. Each node is responsible for the keyword set whose dual encoding
// (package olc) maps to its ID, and stores the per-area content the verifier
// publishes after the garbage-in check: the contract ID, the Open Location
// Code, and the array of validated report CIDs (Fig. 2.9).
package hypercube

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"agnopol/internal/faults"
)

// Entry is the content of a hypercube node for one keyword (one area),
// matching Fig. 2.9 of the thesis.
type Entry struct {
	ContractID string   `json:"contractId"`
	OLC        string   `json:"olc"`
	CIDs       []string `json:"cids"`
}

// Clone returns a deep copy so callers cannot mutate stored state.
func (e *Entry) Clone() *Entry {
	if e == nil {
		return nil
	}
	cp := &Entry{ContractID: e.ContractID, OLC: e.OLC}
	cp.CIDs = append(cp.CIDs, e.CIDs...)
	return cp
}

// JSON renders the entry as the JSON document a real node serves (the
// format in Fig. 2.9).
func (e *Entry) JSON() ([]byte, error) {
	return json.Marshal(e)
}

// Node is one logical hypercube vertex.
type Node struct {
	id      uint64
	entries map[string]*Entry // keyword (OLC) -> content

	// Stats.
	lookupsServed uint64
	storesServed  uint64
	forwarded     uint64
}

// ID returns the node's integer identifier (its r-bit string).
func (n *Node) ID() uint64 { return n.id }

// Network is the complete r-dimensional hypercube.
type Network struct {
	mu    sync.RWMutex
	r     int
	nodes []*Node

	totalHops    uint64
	totalLookups uint64
	rerouted     uint64

	// flt injects node failures on routing paths; nil when fault
	// injection is off.
	flt *faults.Injector
}

// SetFaults attaches a fault injector to the routing layer.
func (h *Network) SetFaults(inj *faults.Injector) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flt = inj
}

// New creates an r-dimensional hypercube with all 2^r logical nodes. r must
// be in 1..20 (the paper uses small r; 2^20 nodes is already a million).
func New(r int) (*Network, error) {
	if r < 1 || r > 20 {
		return nil, fmt.Errorf("hypercube: dimension r=%d out of range (1..20)", r)
	}
	n := &Network{r: r, nodes: make([]*Node, 1<<uint(r))}
	for i := range n.nodes {
		n.nodes[i] = &Node{id: uint64(i), entries: make(map[string]*Entry)}
	}
	return n, nil
}

// MustNew is New for static dimensions.
func MustNew(r int) *Network {
	n, err := New(r)
	if err != nil {
		panic(err)
	}
	return n
}

// Dimension returns r.
func (h *Network) Dimension() int { return h.r }

// Size returns the number of logical nodes, 2^r.
func (h *Network) Size() int { return len(h.nodes) }

// Neighbors returns the IDs adjacent to id (differing in exactly one bit).
func (h *Network) Neighbors(id uint64) []uint64 {
	out := make([]uint64, 0, h.r)
	for b := h.r - 1; b >= 0; b-- {
		out = append(out, id^(1<<uint(b)))
	}
	return out
}

// Route walks greedily from 'from' to 'to', flipping the most significant
// differing bit at each hop, and returns the path including both endpoints.
// Path length is the Hamming distance, hence at most r.
func (h *Network) Route(from, to uint64) []uint64 {
	path := []uint64{from}
	cur := from
	for cur != to {
		diff := cur ^ to
		b := bits.Len64(diff) - 1
		cur ^= 1 << uint(b)
		path = append(path, cur)
	}
	return path
}

// routeResilient walks greedily from 'from' to 'to' like Route, but
// consults the fault injector at every intermediate hop: when the greedy
// next-hop node is down, the walk detours via the least significant
// differing bit instead. Any differing bit closes the Hamming distance, so
// reroutes never lengthen the path and the r-hop bound survives failures.
// The endpoints never fail — the requester is alive and the responsible
// node must serve, matching the paper's assumption that content
// responsibility is re-homed out of band.
func (h *Network) routeResilient(from, to uint64) (path []uint64, rerouted int) {
	path = []uint64{from}
	cur := from
	for cur != to {
		diff := cur ^ to
		next := cur ^ (1 << uint(bits.Len64(diff)-1))
		if next != to && h.flt.Hit(faults.ClassCubeNodeDown, "cube.route") {
			next = cur ^ (1 << uint(bits.TrailingZeros64(diff)))
			rerouted++
		}
		cur = next
		path = append(path, cur)
	}
	return path, rerouted
}

// finishRoute records a completed fault-aware route: every reroute that
// still delivered the request counts as a recovery.
func (h *Network) finishRoute(rerouted int) {
	h.rerouted += uint64(rerouted)
	h.flt.RecoverN(faults.ClassCubeNodeDown, rerouted)
}

// Hops returns the routing distance between two node IDs.
func (h *Network) Hops(from, to uint64) int {
	return bits.OnesCount64(from ^ to)
}

func (h *Network) checkID(id uint64) error {
	if id >= uint64(len(h.nodes)) {
		return fmt.Errorf("hypercube: node id %d out of range for r=%d", id, h.r)
	}
	return nil
}

// Put routes from entry node 'via' to the node responsible for keyword
// (target node targetID) and stores the entry there. It returns the number
// of hops the request travelled.
func (h *Network) Put(via, targetID uint64, keyword string, entry *Entry) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkID(via); err != nil {
		return 0, err
	}
	if err := h.checkID(targetID); err != nil {
		return 0, err
	}
	path, rerouted := h.routeResilient(via, targetID)
	for _, nid := range path[:len(path)-1] {
		h.nodes[nid].forwarded++
	}
	node := h.nodes[targetID]
	node.entries[keyword] = entry.Clone()
	node.storesServed++
	h.totalHops += uint64(len(path) - 1)
	h.totalLookups++
	h.finishRoute(rerouted)
	return len(path) - 1, nil
}

// Get routes from 'via' to the responsible node and returns the entry for
// keyword, the hop count, and whether it was found.
func (h *Network) Get(via, targetID uint64, keyword string) (*Entry, int, bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkID(via); err != nil {
		return nil, 0, false, err
	}
	if err := h.checkID(targetID); err != nil {
		return nil, 0, false, err
	}
	path, rerouted := h.routeResilient(via, targetID)
	for _, nid := range path[:len(path)-1] {
		h.nodes[nid].forwarded++
	}
	node := h.nodes[targetID]
	node.lookupsServed++
	h.totalHops += uint64(len(path) - 1)
	h.totalLookups++
	h.finishRoute(rerouted)
	e, ok := node.entries[keyword]
	return e.Clone(), len(path) - 1, ok, nil
}

// AppendCID appends a validated report CID to the entry for keyword,
// creating the entry when absent. This is the verifier's garbage-in write
// path.
func (h *Network) AppendCID(via, targetID uint64, keyword, contractID, cid string) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.checkID(via); err != nil {
		return 0, err
	}
	if err := h.checkID(targetID); err != nil {
		return 0, err
	}
	path, rerouted := h.routeResilient(via, targetID)
	node := h.nodes[targetID]
	e, ok := node.entries[keyword]
	if !ok {
		e = &Entry{ContractID: contractID, OLC: keyword}
		node.entries[keyword] = e
	}
	e.CIDs = append(e.CIDs, cid)
	node.storesServed++
	h.totalHops += uint64(len(path) - 1)
	h.totalLookups++
	h.finishRoute(rerouted)
	return len(path) - 1, nil
}

// RangeQuery implements the "complex query" of §1.3: collect every entry
// stored within maxHops of the target node (a Hamming ball), the mechanism
// that lets the application fetch reports for an area and its surroundings
// with a bounded number of hops.
func (h *Network) RangeQuery(targetID uint64, maxHops int) ([]*Entry, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if err := h.checkID(targetID); err != nil {
		return nil, err
	}
	var out []*Entry
	for _, n := range h.nodes {
		if bits.OnesCount64(n.id^targetID) <= maxHops {
			keys := make([]string, 0, len(n.entries))
			for k := range n.entries {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				out = append(out, n.entries[k].Clone())
			}
		}
	}
	return out, nil
}

// NodeLoad is one node's serving tally — how much discovery and storage
// traffic it terminated (forwarding excluded).
type NodeLoad struct {
	ID      uint64
	Lookups uint64
	Stores  uint64
}

// NodeLoads returns the per-node serving tallies, indexed by node ID. The
// sharded-discovery tests use it to show that shard-affine routing spreads
// lookup load over a neighborhood instead of concentrating it.
func (h *Network) NodeLoads() []NodeLoad {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]NodeLoad, len(h.nodes))
	for i, n := range h.nodes {
		out[i] = NodeLoad{ID: n.id, Lookups: n.lookupsServed, Stores: n.storesServed}
	}
	return out
}

// Stats summarizes routing behaviour for the ablation benchmarks.
type Stats struct {
	Lookups uint64
	AvgHops float64
	MaxHops int
	// Rerouted counts hops detoured around injected node failures.
	Rerouted uint64
}

// Stats returns aggregate routing statistics. MaxHops is the theoretical
// bound r (greedy routing can never exceed it).
func (h *Network) Stats() Stats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := Stats{Lookups: h.totalLookups, MaxHops: h.r, Rerouted: h.rerouted}
	if h.totalLookups > 0 {
		s.AvgHops = float64(h.totalHops) / float64(h.totalLookups)
	}
	return s
}
