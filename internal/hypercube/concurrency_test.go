package hypercube

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAccess hammers the DHT from many goroutines; run with
// -race this doubles as the synchronization check for the shared network.
func TestConcurrentAccess(t *testing.T) {
	n := MustNew(8)
	const workers = 16
	const opsPerWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				target := uint64((w*31 + i*17) % n.Size())
				via := uint64((w + i) % n.Size())
				key := fmt.Sprintf("area-%d", target)
				switch i % 3 {
				case 0:
					if _, err := n.Put(via, target, key, &Entry{OLC: key, ContractID: "c"}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, _, err := n.Get(via, target, key); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := n.AppendCID(via, target, key, "c", fmt.Sprintf("bafy-%d-%d", w, i)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := n.Stats()
	if s.Lookups != workers*opsPerWorker {
		t.Fatalf("lookups = %d, want %d", s.Lookups, workers*opsPerWorker)
	}
}
