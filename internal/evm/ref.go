package evm

import (
	"fmt"
	"math/big"

	"agnopol/internal/chain"
	"agnopol/internal/polcrypto"
	"agnopol/internal/precompile"
)

// This file preserves the original big.Int interpreter, verbatim, as
// ExecuteRef. It serves two purposes:
//
//   - it is the semantic oracle for the differential property tests that
//     pin the u256 fast path (diff_test.go) — every opcode of the fast
//     interpreter must agree bit-for-bit with this one;
//   - it is the "before" engine for the vmbench record (BENCH_vm.json),
//     so the ns/op and allocs/op deltas are measured against real code,
//     not a remembered number.
//
// It allocates a *big.Int per opcode by design; do not optimize it.

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

type refInterpreter struct {
	ctx   Context
	state *journaledState
	code  []byte

	stack  []*big.Int
	mem    []byte
	gas    uint64
	refund uint64
	logs   []Log

	warmAddrs map[chain.Address]bool
	warmSlots map[chain.Address]map[chain.Hash32]bool
	origSlots map[chain.Address]map[chain.Hash32]chain.Hash32

	jumpdests map[uint64]bool

	// pcArgs is the precompileHost scratch for resolved argument ranges.
	pcArgs [maxPrecompileRanges][]byte

	profOp    Opcode
	profStart uint64
	profArmed bool
}

func (in *refInterpreter) precompileArgs() *[maxPrecompileRanges][]byte {
	return &in.pcArgs
}

func (in *refInterpreter) profTick(op Opcode) {
	if in.profArmed {
		in.ctx.Profiler.Op(in.profOp.String(), in.profStart-in.gas)
	}
	in.profArmed = true
	in.profOp = op
	in.profStart = in.gas
}

func (in *refInterpreter) profFlush() {
	if in.profArmed {
		in.ctx.Profiler.Op(in.profOp.String(), in.profStart-in.gas)
		in.profArmed = false
	}
}

// ExecuteRef runs code on the retained big.Int reference interpreter. Same
// contract as Execute; used by differential tests and the vmbench baseline.
func ExecuteRef(ctx Context, code []byte) Result {
	in := &refInterpreter{
		ctx:       ctx,
		state:     &journaledState{inner: ctx.State},
		code:      code,
		gas:       ctx.GasLimit,
		warmAddrs: map[chain.Address]bool{ctx.Address: true, ctx.Caller: true},
		warmSlots: make(map[chain.Address]map[chain.Hash32]bool),
		origSlots: make(map[chain.Address]map[chain.Hash32]chain.Hash32),
		jumpdests: scanJumpdestMap(code),
	}
	if ctx.Value == nil {
		in.ctx.Value = new(big.Int)
	}
	res := in.run()
	if res.Err != nil || res.Reverted {
		in.state.j.revert()
	}
	res.Logs = in.logs
	return res
}

func scanJumpdestMap(code []byte) map[uint64]bool {
	dests := make(map[uint64]bool)
	for pc := 0; pc < len(code); {
		op := Opcode(code[pc])
		if op == JUMPDEST {
			dests[uint64(pc)] = true
		}
		if n, ok := op.IsPush(); ok {
			pc += n
		}
		pc++
	}
	return dests
}

func (in *refInterpreter) useGas(amount uint64) bool {
	if in.gas < amount {
		in.gas = 0
		return false
	}
	in.gas -= amount
	return true
}

func (in *refInterpreter) push(v *big.Int) error {
	if len(in.stack) >= stackLimit {
		return ErrStackOverflow
	}
	in.stack = append(in.stack, v)
	return nil
}

func (in *refInterpreter) pop() (*big.Int, error) {
	if len(in.stack) == 0 {
		return nil, ErrStackUnderflow
	}
	v := in.stack[len(in.stack)-1]
	in.stack = in.stack[:len(in.stack)-1]
	return v, nil
}

func (in *refInterpreter) popN(n int) ([]*big.Int, error) {
	if len(in.stack) < n {
		return nil, ErrStackUnderflow
	}
	out := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		out[i] = in.stack[len(in.stack)-1-i]
	}
	in.stack = in.stack[:len(in.stack)-n]
	return out, nil
}

func (in *refInterpreter) expandMem(off, size uint64) bool {
	if size == 0 {
		return true
	}
	end := off + size
	if end < off || end > 1<<32 {
		in.gas = 0
		return false
	}
	curWords := uint64(len(in.mem)+31) / 32
	newWords := (end + 31) / 32
	if newWords > curWords {
		if !in.useGas(memoryGas(newWords) - memoryGas(curWords)) {
			return false
		}
		grown := make([]byte, newWords*32)
		copy(grown, in.mem)
		in.mem = grown
	}
	return true
}

func (in *refInterpreter) memSlice(off, size uint64) []byte {
	if size == 0 {
		return nil
	}
	return in.mem[off : off+size]
}

func refU256(v *big.Int) *big.Int {
	if v.Sign() < 0 || v.Cmp(two256) >= 0 {
		return new(big.Int).Mod(v, two256)
	}
	return v
}

func refBoolWord(b bool) *big.Int {
	if b {
		return big.NewInt(1)
	}
	return new(big.Int)
}

func refWordToHash(v *big.Int) chain.Hash32 {
	var h chain.Hash32
	v.FillBytes(h[:])
	return h
}

func refHashToWord(h chain.Hash32) *big.Int {
	return new(big.Int).SetBytes(h[:])
}

func refWordToAddress(v *big.Int) chain.Address {
	var buf [32]byte
	v.FillBytes(buf[:])
	var a chain.Address
	copy(a[:], buf[12:])
	return a
}

func (in *refInterpreter) slotWarm(addr chain.Address, key chain.Hash32) bool {
	m, ok := in.warmSlots[addr]
	if !ok {
		m = make(map[chain.Hash32]bool)
		in.warmSlots[addr] = m
	}
	if m[key] {
		return true
	}
	m[key] = true
	return false
}

func (in *refInterpreter) originalSlot(addr chain.Address, key chain.Hash32) chain.Hash32 {
	m, ok := in.origSlots[addr]
	if !ok {
		m = make(map[chain.Hash32]chain.Hash32)
		in.origSlots[addr] = m
	}
	if v, ok := m[key]; ok {
		return v
	}
	v := in.state.GetStorage(addr, key)
	m[key] = v
	return v
}

//nolint:gocyclo // a bytecode interpreter is one big dispatch by nature.
func (in *refInterpreter) run() Result {
	fail := func(err error) Result {
		// Exceptional halt: consume everything.
		in.profFlush()
		return Result{GasUsed: in.ctx.GasLimit, Err: err}
	}
	var pc uint64
	for pc < uint64(len(in.code)) {
		op := Opcode(in.code[pc])
		if in.ctx.Profiler != nil {
			in.profTick(op)
		}

		if g, ok := constGas[op]; ok {
			if !in.useGas(g) {
				return fail(ErrOutOfGas)
			}
		}

		switch {
		case op >= PUSH1 && op <= PUSH32:
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			n := uint64(op-PUSH1) + 1
			end := pc + 1 + n
			if end > uint64(len(in.code)) {
				end = uint64(len(in.code))
			}
			v := new(big.Int).SetBytes(in.code[pc+1 : end])
			if err := in.push(v); err != nil {
				return fail(err)
			}
			pc += n + 1
			continue

		case op >= DUP1 && op <= DUP16:
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			n := int(op-DUP1) + 1
			if len(in.stack) < n {
				return fail(ErrStackUnderflow)
			}
			if err := in.push(new(big.Int).Set(in.stack[len(in.stack)-n])); err != nil {
				return fail(err)
			}
			pc++
			continue

		case op >= SWAP1 && op <= SWAP16:
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			n := int(op-SWAP1) + 1
			if len(in.stack) < n+1 {
				return fail(ErrStackUnderflow)
			}
			top := len(in.stack) - 1
			in.stack[top], in.stack[top-n] = in.stack[top-n], in.stack[top]
			pc++
			continue
		}

		switch op {
		case STOP:
			in.profFlush()
			return Result{GasUsed: in.ctx.GasLimit - in.gas, Refund: in.refund}

		case ADD, MUL, SUB, DIV, MOD, AND, OR, XOR, LT, GT, EQ, SHL, SHR, BYTE:
			args, err := in.popN(2)
			if err != nil {
				return fail(err)
			}
			a, b := args[0], args[1]
			var v *big.Int
			switch op {
			case ADD:
				v = refU256(new(big.Int).Add(a, b))
			case MUL:
				v = refU256(new(big.Int).Mul(a, b))
			case SUB:
				v = refU256(new(big.Int).Sub(a, b))
			case DIV:
				if b.Sign() == 0 {
					v = new(big.Int)
				} else {
					v = new(big.Int).Div(a, b)
				}
			case MOD:
				if b.Sign() == 0 {
					v = new(big.Int)
				} else {
					v = new(big.Int).Mod(a, b)
				}
			case AND:
				v = new(big.Int).And(a, b)
			case OR:
				v = new(big.Int).Or(a, b)
			case XOR:
				v = new(big.Int).Xor(a, b)
			case LT:
				v = refBoolWord(a.Cmp(b) < 0)
			case GT:
				v = refBoolWord(a.Cmp(b) > 0)
			case EQ:
				v = refBoolWord(a.Cmp(b) == 0)
			case SHL:
				if a.Cmp(big.NewInt(256)) >= 0 {
					v = new(big.Int)
				} else {
					v = refU256(new(big.Int).Lsh(b, uint(a.Uint64())))
				}
			case SHR:
				if a.Cmp(big.NewInt(256)) >= 0 {
					v = new(big.Int)
				} else {
					v = new(big.Int).Rsh(b, uint(a.Uint64()))
				}
			case BYTE:
				if a.Cmp(big.NewInt(32)) >= 0 {
					v = new(big.Int)
				} else {
					var buf [32]byte
					b.FillBytes(buf[:])
					v = big.NewInt(int64(buf[a.Uint64()]))
				}
			}
			if err := in.push(v); err != nil {
				return fail(err)
			}

		case EXP:
			args, err := in.popN(2)
			if err != nil {
				return fail(err)
			}
			base, exp := args[0], args[1]
			expBytes := uint64((exp.BitLen() + 7) / 8)
			if !in.useGas(GasExp + GasExpByte*expBytes) {
				return fail(ErrOutOfGas)
			}
			if err := in.push(new(big.Int).Exp(base, exp, two256)); err != nil {
				return fail(err)
			}

		case ISZERO, NOT:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			var v *big.Int
			if op == ISZERO {
				v = refBoolWord(a.Sign() == 0)
			} else {
				v = new(big.Int).Sub(new(big.Int).Sub(two256, big.NewInt(1)), a)
			}
			if err := in.push(v); err != nil {
				return fail(err)
			}

		case KECCAK256:
			args, err := in.popN(2)
			if err != nil {
				return fail(err)
			}
			off, size := args[0].Uint64(), args[1].Uint64()
			words := (size + 31) / 32
			if !in.useGas(GasKeccak256 + GasKeccak256Word*words) {
				return fail(ErrOutOfGas)
			}
			if !in.expandMem(off, size) {
				return fail(ErrOutOfGas)
			}
			h := polcrypto.Hash1(in.memSlice(off, size))
			if err := in.push(new(big.Int).SetBytes(h[:])); err != nil {
				return fail(err)
			}

		case ADDRESS:
			if err := in.push(new(big.Int).SetBytes(in.ctx.Address[:])); err != nil {
				return fail(err)
			}
		case CALLER:
			if err := in.push(new(big.Int).SetBytes(in.ctx.Caller[:])); err != nil {
				return fail(err)
			}
		case CALLVALUE:
			if err := in.push(new(big.Int).Set(in.ctx.Value)); err != nil {
				return fail(err)
			}
		case TIMESTAMP:
			if err := in.push(new(big.Int).SetUint64(in.ctx.Timestamp)); err != nil {
				return fail(err)
			}
		case NUMBER:
			if err := in.push(new(big.Int).SetUint64(in.ctx.BlockNumber)); err != nil {
				return fail(err)
			}
		case SELFBALANCE:
			if err := in.push(in.state.GetBalance(in.ctx.Address)); err != nil {
				return fail(err)
			}

		case BALANCE:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			addr := refWordToAddress(a)
			cost := uint64(GasColdAccount)
			if in.warmAddrs[addr] {
				cost = GasWarmAccess
			}
			in.warmAddrs[addr] = true
			if !in.useGas(cost) {
				return fail(ErrOutOfGas)
			}
			if err := in.push(in.state.GetBalance(addr)); err != nil {
				return fail(err)
			}

		case CALLDATALOAD:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			off := a.Uint64()
			var buf [32]byte
			for i := uint64(0); i < 32; i++ {
				if off+i < uint64(len(in.ctx.CallData)) {
					buf[i] = in.ctx.CallData[off+i]
				}
			}
			if err := in.push(new(big.Int).SetBytes(buf[:])); err != nil {
				return fail(err)
			}
		case CALLDATASIZE:
			if err := in.push(big.NewInt(int64(len(in.ctx.CallData)))); err != nil {
				return fail(err)
			}
		case CALLDATACOPY:
			vals, err := in.popN(3)
			if err != nil {
				return fail(err)
			}
			dst, off, size := vals[0].Uint64(), vals[1].Uint64(), vals[2].Uint64()
			words := (size + 31) / 32
			if !in.useGas(GasVeryLow + GasCopy*words) {
				return fail(ErrOutOfGas)
			}
			if !in.expandMem(dst, size) {
				return fail(ErrOutOfGas)
			}
			mem := in.memSlice(dst, size)
			data := in.ctx.CallData
			for i := uint64(0); i < size; i++ {
				if src := off + i; src >= off && src < uint64(len(data)) {
					mem[i] = data[src]
				} else {
					mem[i] = 0
				}
			}

		case POP:
			if _, err := in.pop(); err != nil {
				return fail(err)
			}

		case MLOAD:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			off := a.Uint64()
			if !in.expandMem(off, 32) {
				return fail(ErrOutOfGas)
			}
			if err := in.push(new(big.Int).SetBytes(in.memSlice(off, 32))); err != nil {
				return fail(err)
			}
		case MSTORE:
			args, err := in.popN(2)
			if err != nil {
				return fail(err)
			}
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			off := args[0].Uint64()
			if !in.expandMem(off, 32) {
				return fail(ErrOutOfGas)
			}
			args[1].FillBytes(in.mem[off : off+32])

		case SLOAD:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			key := refWordToHash(a)
			cost := uint64(GasColdSLoad)
			if in.slotWarm(in.ctx.Address, key) {
				cost = GasWarmAccess
			}
			if !in.useGas(cost) {
				return fail(ErrOutOfGas)
			}
			if err := in.push(refHashToWord(in.state.GetStorage(in.ctx.Address, key))); err != nil {
				return fail(err)
			}

		case SSTORE:
			args, err := in.popN(2)
			if err != nil {
				return fail(err)
			}
			key := refWordToHash(args[0])
			value := refWordToHash(args[1])
			cost := uint64(0)
			if !in.slotWarm(in.ctx.Address, key) {
				cost += GasColdSLoad
			}
			current := in.state.GetStorage(in.ctx.Address, key)
			original := in.originalSlot(in.ctx.Address, key)
			switch {
			case current == value:
				cost += GasWarmAccess
			case current == original && original == (chain.Hash32{}):
				cost += GasSSet
			case current == original:
				cost += GasSReset
			default:
				cost += GasWarmAccess
			}
			if current != value && value == (chain.Hash32{}) && current != (chain.Hash32{}) {
				in.refund += RefundSClear
			}
			if !in.useGas(cost) {
				return fail(ErrOutOfGas)
			}
			in.state.SetStorage(in.ctx.Address, key, value)

		case JUMP:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			dest := a.Uint64()
			if !in.jumpdests[dest] {
				return fail(ErrInvalidJump)
			}
			pc = dest
			continue
		case JUMPI:
			args, err := in.popN(2)
			if err != nil {
				return fail(err)
			}
			if args[1].Sign() != 0 {
				dest := args[0].Uint64()
				if !in.jumpdests[dest] {
					return fail(ErrInvalidJump)
				}
				pc = dest
				continue
			}

		case PC:
			if err := in.push(new(big.Int).SetUint64(pc)); err != nil {
				return fail(err)
			}
		case MSIZE:
			if err := in.push(big.NewInt(int64(len(in.mem)))); err != nil {
				return fail(err)
			}
		case GAS:
			if err := in.push(new(big.Int).SetUint64(in.gas)); err != nil {
				return fail(err)
			}
		case JUMPDEST:
			// cost charged via constGas; no effect.

		case LOG0, LOG1, LOG2:
			topicCount := int(op - LOG0)
			args, err := in.popN(2 + topicCount)
			if err != nil {
				return fail(err)
			}
			off, size := args[0].Uint64(), args[1].Uint64()
			if !in.useGas(GasLog + GasLogTopic*uint64(topicCount) + GasLogData*size) {
				return fail(ErrOutOfGas)
			}
			if !in.expandMem(off, size) {
				return fail(ErrOutOfGas)
			}
			log := Log{Address: in.ctx.Address, Data: append([]byte(nil), in.memSlice(off, size)...)}
			for i := 0; i < topicCount; i++ {
				log.Topics = append(log.Topics, refWordToHash(args[2+i]))
			}
			in.logs = append(in.logs, log)

		case CALL:
			// Value-transfer call (the contract language only transfers to
			// externally-owned accounts; nested contract execution is not
			// part of the compiled programs).
			args, err := in.popN(7)
			if err != nil {
				return fail(err)
			}
			to := refWordToAddress(args[1])
			if p := precompile.ByAddress(to); p != nil {
				ok, oog := runPrecompile(in, p, args[2].Sign() == 0,
					args[3].Uint64(), args[4].Uint64(), args[5].Uint64(), args[6].Uint64())
				if oog {
					return fail(ErrOutOfGas)
				}
				result := new(big.Int)
				if ok {
					result.SetUint64(1)
				}
				if err := in.push(result); err != nil {
					return fail(err)
				}
				pc++
				continue
			}
			value := args[2]
			cost := uint64(GasColdAccount)
			if in.warmAddrs[to] {
				cost = GasWarmAccess
			}
			in.warmAddrs[to] = true
			if value.Sign() > 0 {
				cost += GasCallValue
				if !in.state.AccountExists(to) {
					cost += GasNewAccount
				}
			}
			if !in.useGas(cost) {
				return fail(ErrOutOfGas)
			}
			if in.state.GetBalance(in.ctx.Address).Cmp(value) < 0 {
				if err := in.push(new(big.Int)); err != nil {
					return fail(err)
				}
			} else {
				in.state.SubBalance(in.ctx.Address, value)
				in.state.AddBalance(to, value)
				if err := in.push(big.NewInt(1)); err != nil {
					return fail(err)
				}
			}

		case RETURN, REVERT:
			args, err := in.popN(2)
			if err != nil {
				return fail(err)
			}
			off, size := args[0].Uint64(), args[1].Uint64()
			if !in.expandMem(off, size) {
				return fail(ErrOutOfGas)
			}
			data := append([]byte(nil), in.memSlice(off, size)...)
			in.profFlush()
			res := Result{
				GasUsed:    in.ctx.GasLimit - in.gas,
				Refund:     in.refund,
				ReturnData: data,
			}
			if op == REVERT {
				res.Reverted = true
				res.RevertMsg = string(data)
				res.Refund = 0
			}
			return res

		default:
			return fail(fmt.Errorf("%w: %s at pc=%d", ErrInvalidOpcode, op, pc))
		}
		pc++
	}
	in.profFlush()
	return Result{GasUsed: in.ctx.GasLimit - in.gas, Refund: in.refund}
}
