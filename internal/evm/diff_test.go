package evm

import (
	"bytes"
	"math/big"
	"math/rand"
	"reflect"
	"testing"

	"agnopol/internal/chain"
)

// cloneMemState deep-copies a MemState so the fast and reference
// interpreters each mutate an independent world.
func cloneMemState(s *MemState) *MemState {
	c := NewMemState()
	for a, b := range s.Balances {
		c.Balances[a] = new(big.Int).Set(b)
	}
	for a, m := range s.Storage {
		cm := make(map[chain.Hash32]chain.Hash32, len(m))
		for k, v := range m {
			cm[k] = v
		}
		c.Storage[a] = cm
	}
	return c
}

func memStatesEqual(a, b *MemState) bool {
	if len(a.Balances) != len(b.Balances) || len(a.Storage) != len(b.Storage) {
		return false
	}
	for addr, ba := range a.Balances {
		bb, ok := b.Balances[addr]
		if !ok || ba.Cmp(bb) != 0 {
			return false
		}
	}
	for addr, ma := range a.Storage {
		mb := b.Storage[addr]
		if len(ma) != len(mb) {
			return false
		}
		for k, v := range ma {
			if mb[k] != v {
				return false
			}
		}
	}
	return true
}

func resultsEqual(a, b Result) bool {
	if a.GasUsed != b.GasUsed || a.Refund != b.Refund ||
		a.Reverted != b.Reverted || a.RevertMsg != b.RevertMsg {
		return false
	}
	if !bytes.Equal(a.ReturnData, b.ReturnData) {
		return false
	}
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	if a.Err != nil && a.Err.Error() != b.Err.Error() {
		return false
	}
	return reflect.DeepEqual(a.Logs, b.Logs)
}

// genProgram emits a random but mostly-well-formed bytecode sequence. The
// generator is biased toward opcodes that exercise u256 arithmetic and the
// memory/storage paths; a tail fraction of programs also contains garbage
// bytes so exceptional-halt parity is covered too.
func genProgram(rng *rand.Rand) []byte {
	var p []byte
	pushRand := func() {
		n := 1 + rng.Intn(32)
		p = append(p, byte(PUSH1)+byte(n-1))
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				p = append(p, 0x00)
			case 1:
				p = append(p, 0xff)
			default:
				p = append(p, byte(rng.Intn(256)))
			}
		}
	}
	pushSmall := func(v byte) { p = append(p, byte(PUSH1), v) }

	steps := 4 + rng.Intn(40)
	for i := 0; i < steps; i++ {
		switch rng.Intn(20) {
		case 0, 1, 2, 3, 4:
			pushRand()
		case 5, 6:
			// Binary op on whatever is on the stack (may underflow — both
			// engines must agree on that too).
			ops := []Opcode{ADD, MUL, SUB, DIV, MOD, AND, OR, XOR, LT, GT, EQ, SHL, SHR, BYTE, EXP}
			p = append(p, byte(ops[rng.Intn(len(ops))]))
		case 7:
			p = append(p, byte([]Opcode{ISZERO, NOT, POP}[rng.Intn(3)]))
		case 8:
			p = append(p, byte(DUP1)+byte(rng.Intn(16)))
		case 9:
			p = append(p, byte(SWAP1)+byte(rng.Intn(16)))
		case 10:
			// Bounded memory traffic.
			pushRand()
			pushSmall(byte(rng.Intn(200)))
			p = append(p, byte(MSTORE))
		case 11:
			pushSmall(byte(rng.Intn(200)))
			p = append(p, byte(MLOAD))
		case 12:
			pushRand()
			pushSmall(byte(rng.Intn(8)))
			p = append(p, byte(SSTORE))
		case 13:
			pushSmall(byte(rng.Intn(8)))
			p = append(p, byte(SLOAD))
		case 14:
			p = append(p, byte([]Opcode{ADDRESS, CALLER, CALLVALUE, TIMESTAMP, NUMBER,
				CALLDATASIZE, PC, MSIZE, GAS, SELFBALANCE, JUMPDEST}[rng.Intn(11)]))
		case 15:
			pushSmall(byte(rng.Intn(64)))
			p = append(p, byte(CALLDATALOAD))
		case 16:
			pushSmall(byte(rng.Intn(32)))
			pushSmall(byte(rng.Intn(64)))
			p = append(p, byte(KECCAK256))
		case 17:
			// Jump somewhere — occasionally valid, mostly an error; parity
			// on ErrInvalidJump is part of the contract.
			pushSmall(byte(rng.Intn(len(p) + 2)))
			p = append(p, byte([]Opcode{JUMP, JUMPI}[rng.Intn(2)]))
		case 18:
			pushSmall(byte(rng.Intn(16)))
			pushSmall(byte(rng.Intn(32)))
			p = append(p, byte(LOG0)+byte(rng.Intn(3)))
		case 19:
			if rng.Intn(3) == 0 {
				p = append(p, byte(rng.Intn(256))) // raw garbage
			} else {
				pushSmall(byte(rng.Intn(32)))
				pushSmall(byte(rng.Intn(32)))
				p = append(p, byte([]Opcode{RETURN, REVERT, STOP}[rng.Intn(3)]))
			}
		}
	}
	return p
}

// TestDifferentialRandomPrograms runs thousands of generated programs
// through both interpreters and requires bit-identical results and final
// world state — the whole-VM extension of the u256 property tests.
func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	addr := chain.Address{0xaa}
	caller := chain.Address{0xbb}
	for i := 0; i < 4000; i++ {
		code := genProgram(rng)
		calldata := make([]byte, rng.Intn(96))
		rng.Read(calldata)

		base := NewMemState()
		base.Balances[addr] = big.NewInt(int64(rng.Intn(1_000_000)))
		base.Balances[caller] = big.NewInt(1_000_000)
		if rng.Intn(2) == 0 {
			base.SetStorage(addr, chain.Hash32{1}, chain.Hash32{9})
		}
		stFast := cloneMemState(base)
		stRef := cloneMemState(base)

		value := big.NewInt(int64(rng.Intn(1000)))
		gas := uint64(20_000 + rng.Intn(200_000))
		mk := func(st StateDB) Context {
			return Context{
				State:       st,
				Caller:      caller,
				Address:     addr,
				Value:       new(big.Int).Set(value),
				CallData:    calldata,
				GasLimit:    gas,
				BlockNumber: 7,
				Timestamp:   1234567,
			}
		}

		got := Execute(mk(stFast), code)
		want := ExecuteRef(mk(stRef), code)

		if !resultsEqual(got, want) {
			t.Fatalf("iter %d: result mismatch\ncode=%x\nfast=%+v\nref=%+v", i, code, got, want)
		}
		if !memStatesEqual(stFast, stRef) {
			t.Fatalf("iter %d: state diverged\ncode=%x", i, code)
		}
	}
}

// TestDifferentialCallTransfer pins the CALL value-transfer path, which the
// random generator rarely assembles with seven well-formed arguments.
func TestDifferentialCallTransfer(t *testing.T) {
	addr := chain.Address{0xaa}
	caller := chain.Address{0xbb}
	dest := chain.Address{0xcc}

	// PUSH 0 (retSize, retOff, argSize, argOff) PUSH value PUSH to PUSH gas CALL STOP
	var code []byte
	for i := 0; i < 4; i++ {
		code = append(code, byte(PUSH1), 0)
	}
	code = append(code, byte(PUSH1)+1, 0x01, 0x00) // PUSH2 value 256
	code = append(code, byte(PUSH32))
	var toWord [32]byte
	copy(toWord[12:], dest[:])
	code = append(code, toWord[:]...)
	code = append(code, byte(PUSH1), 0, byte(CALL), byte(STOP))

	for _, bal := range []int64{0, 255, 256, 100000} {
		base := NewMemState()
		base.Balances[addr] = big.NewInt(bal)
		stFast := cloneMemState(base)
		stRef := cloneMemState(base)
		mk := func(st StateDB) Context {
			return Context{State: st, Caller: caller, Address: addr, GasLimit: 100_000}
		}
		got := Execute(mk(stFast), code)
		want := ExecuteRef(mk(stRef), code)
		if !resultsEqual(got, want) {
			t.Fatalf("bal %d: result mismatch fast=%+v ref=%+v", bal, got, want)
		}
		if !memStatesEqual(stFast, stRef) {
			t.Fatalf("bal %d: state diverged", bal)
		}
	}
}

// TestPooledInterpreterIsolation re-runs the same contract through the pool
// many times with different inputs; a leak of pooled state (stale memory,
// stale warm sets, stale jumpdests) would break run-to-run determinism.
func TestPooledInterpreterIsolation(t *testing.T) {
	addr := chain.Address{0x11}
	// MSTORE calldata word at 0, hash it, store it, return it.
	code := []byte{
		byte(PUSH1), 0, byte(CALLDATALOAD),
		byte(PUSH1), 0, byte(MSTORE),
		byte(PUSH1), 32, byte(PUSH1), 0, byte(KECCAK256),
		byte(PUSH1), 5, byte(SSTORE),
		byte(PUSH1), 32, byte(PUSH1), 0, byte(RETURN),
	}
	for round := 0; round < 50; round++ {
		calldata := make([]byte, 32)
		calldata[31] = byte(round)
		run := func() (Result, *MemState) {
			st := NewMemState()
			res := Execute(Context{State: st, Address: addr, CallData: calldata, GasLimit: 200_000}, code)
			return res, st
		}
		r1, s1 := run()
		r2, s2 := run()
		if r1.Err != nil {
			t.Fatalf("round %d: %v", round, r1.Err)
		}
		if !resultsEqual(r1, r2) || !memStatesEqual(s1, s2) {
			t.Fatalf("round %d: pooled run not deterministic", round)
		}
	}
}

// TestPooledInterpreterConcurrent exercises the pool under -race.
func TestPooledInterpreterConcurrent(t *testing.T) {
	code := []byte{
		byte(PUSH1), 7, byte(PUSH1), 9, byte(MUL),
		byte(PUSH1), 0, byte(MSTORE),
		byte(PUSH1), 32, byte(PUSH1), 0, byte(RETURN),
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				st := NewMemState()
				res := Execute(Context{State: st, GasLimit: 100_000, Address: chain.Address{byte(i)}}, code)
				if res.Err != nil || len(res.ReturnData) != 32 || res.ReturnData[31] != 63 {
					done <- res.Err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
