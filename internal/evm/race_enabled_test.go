//go:build race

package evm

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count assertions are skipped under it because the
// instrumentation itself allocates.
const raceEnabled = true
