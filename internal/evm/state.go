package evm

import (
	"math/big"

	"agnopol/internal/chain"
)

// StateDB is the world-state interface the VM mutates. The Ethereum-family
// chain simulator provides the implementation; tests use MemState.
type StateDB interface {
	GetBalance(chain.Address) *big.Int
	AddBalance(chain.Address, *big.Int)
	SubBalance(chain.Address, *big.Int)
	GetStorage(addr chain.Address, key chain.Hash32) chain.Hash32
	SetStorage(addr chain.Address, key, value chain.Hash32)
	AccountExists(chain.Address) bool
}

// MemState is an in-memory StateDB for unit tests and standalone VM use.
type MemState struct {
	Balances map[chain.Address]*big.Int
	Storage  map[chain.Address]map[chain.Hash32]chain.Hash32
}

// NewMemState returns an empty state.
func NewMemState() *MemState {
	return &MemState{
		Balances: make(map[chain.Address]*big.Int),
		Storage:  make(map[chain.Address]map[chain.Hash32]chain.Hash32),
	}
}

var _ StateDB = (*MemState)(nil)

// GetBalance implements StateDB.
func (s *MemState) GetBalance(a chain.Address) *big.Int {
	if b, ok := s.Balances[a]; ok {
		return new(big.Int).Set(b)
	}
	return new(big.Int)
}

// AddBalance implements StateDB.
func (s *MemState) AddBalance(a chain.Address, v *big.Int) {
	b, ok := s.Balances[a]
	if !ok {
		b = new(big.Int)
		s.Balances[a] = b
	}
	b.Add(b, v)
}

// SubBalance implements StateDB.
func (s *MemState) SubBalance(a chain.Address, v *big.Int) {
	b, ok := s.Balances[a]
	if !ok {
		b = new(big.Int)
		s.Balances[a] = b
	}
	b.Sub(b, v)
}

// GetStorage implements StateDB.
func (s *MemState) GetStorage(addr chain.Address, key chain.Hash32) chain.Hash32 {
	if m, ok := s.Storage[addr]; ok {
		return m[key]
	}
	return chain.Hash32{}
}

// SetStorage implements StateDB.
func (s *MemState) SetStorage(addr chain.Address, key, value chain.Hash32) {
	m, ok := s.Storage[addr]
	if !ok {
		m = make(map[chain.Hash32]chain.Hash32)
		s.Storage[addr] = m
	}
	if (value == chain.Hash32{}) {
		delete(m, key)
		return
	}
	m[key] = value
}

// AccountExists implements StateDB.
func (s *MemState) AccountExists(a chain.Address) bool {
	_, ok := s.Balances[a]
	return ok
}

// journalEntry records a reversible state change so REVERT restores the
// pre-call world state.
type journalEntry struct {
	undo func()
}

// journal collects changes applied during one execution frame.
type journal struct {
	entries []journalEntry
}

func (j *journal) record(undo func()) {
	j.entries = append(j.entries, journalEntry{undo: undo})
}

func (j *journal) revert() {
	for i := len(j.entries) - 1; i >= 0; i-- {
		j.entries[i].undo()
	}
	j.entries = nil
}

// journaledState wraps a StateDB with undo logging for the duration of a
// transaction.
type journaledState struct {
	inner StateDB
	j     journal
}

func (s *journaledState) GetBalance(a chain.Address) *big.Int { return s.inner.GetBalance(a) }

func (s *journaledState) AddBalance(a chain.Address, v *big.Int) {
	amount := new(big.Int).Set(v)
	s.inner.AddBalance(a, amount)
	s.j.record(func() { s.inner.SubBalance(a, amount) })
}

func (s *journaledState) SubBalance(a chain.Address, v *big.Int) {
	amount := new(big.Int).Set(v)
	s.inner.SubBalance(a, amount)
	s.j.record(func() { s.inner.AddBalance(a, amount) })
}

func (s *journaledState) GetStorage(addr chain.Address, key chain.Hash32) chain.Hash32 {
	return s.inner.GetStorage(addr, key)
}

func (s *journaledState) SetStorage(addr chain.Address, key, value chain.Hash32) {
	prev := s.inner.GetStorage(addr, key)
	s.inner.SetStorage(addr, key, value)
	s.j.record(func() { s.inner.SetStorage(addr, key, prev) })
}

func (s *journaledState) AccountExists(a chain.Address) bool { return s.inner.AccountExists(a) }
