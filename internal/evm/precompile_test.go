package evm

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"math/big"
	"testing"

	"agnopol/internal/chain"
	"agnopol/internal/precompile"
)

// Precompile interception tests (DESIGN.md §14): hand-assembled CALLs to the
// reserved addresses, every program run under both the u256 engine and the
// big.Int reference engine with resultsEqual (return data, logs, revert
// status AND gas — the engines must charge identically on the intercepted
// path).

// emitWrite stores data into memory at off (32-byte-aligned chunk writes;
// callers lay ranges out with a word of slack so the right-padding of the
// final chunk cannot clobber a neighbour).
func emitWrite(a *Assembler, off uint64, data []byte) {
	for i := 0; i < len(data); i += 32 {
		var chunk [32]byte
		copy(chunk[:], data[i:])
		a.PushBytes(chunk[:])
		a.PushUint(off + uint64(i))
		a.Op(MSTORE)
	}
}

// emitDescriptor writes k (offset, length) pairs at descOff.
func emitDescriptor(a *Assembler, descOff uint64, ranges [][2]uint64) {
	for i, r := range ranges {
		a.PushUint(r[0]).PushUint(descOff + uint64(i)*64).Op(MSTORE)
		a.PushUint(r[1]).PushUint(descOff + uint64(i)*64 + 32).Op(MSTORE)
	}
}

// emitCall CALLs precompile id with the descriptor at [descOff, descOff+
// 64·pairs) and a 32-byte output region at outOff, leaving the CALL's 1/0
// result on the stack.
func emitCall(a *Assembler, id byte, descOff uint64, pairs int, outOff uint64, value uint64) {
	a.PushUint(32).PushUint(outOff)
	a.PushUint(uint64(64 * pairs)).PushUint(descOff)
	a.PushUint(value)
	a.PushUint(uint64(id))
	a.PushUint(0) // gas operand is ignored on the intercepted path
	a.Op(CALL)
}

// runBoth executes code under both engines on fresh state and checks they
// agree bit-for-bit before returning the fast engine's result.
func runBoth(t *testing.T, code []byte, gasLimit uint64) Result {
	t.Helper()
	self := chain.AddressFromBytes([]byte("precompile-test"))
	mk := func() Context {
		return Context{
			State: NewMemState(), Address: self, Value: new(big.Int),
			GasLimit: gasLimit, BlockNumber: 1, Timestamp: 1,
		}
	}
	fast := Execute(mk(), code)
	ref := ExecuteRef(mk(), code)
	if !resultsEqual(fast, ref) {
		t.Fatalf("engines disagree on precompile path:\nfast: %+v\nref:  %+v", fast, ref)
	}
	return fast
}

// returnOut appends RETURN of the 32-byte word at outOff (consuming the CALL
// result flag via the success check: revert when the CALL pushed 0).
func returnOut(a *Assembler, outOff uint64) {
	a.PushLabel("ok").Op(JUMPI)
	a.PushUint(0).PushUint(0).Op(REVERT)
	a.Label("ok").Op(JUMPDEST)
	a.PushUint(32).PushUint(outOff).Op(RETURN)
}

func TestPrecompileSha256Call(t *testing.T) {
	payload := []byte("proof-of-location")
	a := NewAssembler()
	emitWrite(a, 0x200, payload)
	emitDescriptor(a, 0x00, [][2]uint64{{0x200, uint64(len(payload))}})
	emitCall(a, precompile.IDSha256, 0x00, 1, 0x180, 0)
	returnOut(a, 0x180)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, code, 200_000)
	if res.Err != nil || res.Reverted {
		t.Fatalf("call failed: %+v", res)
	}
	want := sha256.Sum256(payload)
	if !bytes.Equal(res.ReturnData, want[:]) {
		t.Fatalf("digest = %x, want %x", res.ReturnData, want)
	}
}

func TestPrecompileMultiRangeFusion(t *testing.T) {
	// Three ranges hashed in one call must equal the digest of the
	// concatenation — the property the compiler's digest-over-concat fusion
	// relies on.
	parts := [][]byte{[]byte("loc:8FQFCXGV+XX"), []byte("nonce-1234"), []byte("bafybei-cid")}
	a := NewAssembler()
	var ranges [][2]uint64
	base := uint64(0x300)
	var concat []byte
	for _, p := range parts {
		emitWrite(a, base, p)
		ranges = append(ranges, [2]uint64{base, uint64(len(p))})
		concat = append(concat, p...)
		base += 0x60
	}
	emitDescriptor(a, 0x00, ranges)
	emitCall(a, precompile.IDSha256, 0x00, len(ranges), 0x180, 0)
	returnOut(a, 0x180)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, code, 200_000)
	if res.Err != nil || res.Reverted {
		t.Fatalf("call failed: %+v", res)
	}
	want := sha256.Sum256(concat)
	if !bytes.Equal(res.ReturnData, want[:]) {
		t.Fatalf("fused digest = %x, want %x", res.ReturnData, want)
	}
}

func TestPrecompileComparisons(t *testing.T) {
	cases := []struct {
		name string
		id   byte
		a, b string
		want byte
	}{
		{"bytes-equal-yes", precompile.IDBytesEqual, "same-bytes", "same-bytes", 1},
		{"bytes-equal-no", precompile.IDBytesEqual, "same-bytes", "other-bytes", 0},
		{"contains-yes", precompile.IDOLCContains, "8FQFCX", "8FQFCXGV+XX", 1},
		{"contains-no", precompile.IDOLCContains, "8FQFCX", "9FQFCXGV+XX", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := NewAssembler()
			emitWrite(a, 0x200, []byte(c.a))
			emitWrite(a, 0x280, []byte(c.b))
			emitDescriptor(a, 0x00, [][2]uint64{
				{0x200, uint64(len(c.a))}, {0x280, uint64(len(c.b))},
			})
			emitCall(a, c.id, 0x00, 2, 0x180, 0)
			returnOut(a, 0x180)
			code, err := a.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			res := runBoth(t, code, 200_000)
			if res.Err != nil || res.Reverted {
				t.Fatalf("call failed: %+v", res)
			}
			if len(res.ReturnData) != 32 || res.ReturnData[31] != c.want {
				t.Fatalf("result = %x, want low byte %d", res.ReturnData, c.want)
			}
		})
	}
}

func TestPrecompileEd25519Call(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := sha256.Sum256([]byte("signed check-in"))
	sig := ed25519.Sign(priv, msg[:])

	build := func(sig []byte) []byte {
		a := NewAssembler()
		emitWrite(a, 0x200, pub)
		emitWrite(a, 0x240, msg[:])
		emitWrite(a, 0x280, sig)
		emitDescriptor(a, 0x00, [][2]uint64{
			{0x200, uint64(len(pub))}, {0x240, 32}, {0x280, uint64(len(sig))},
		})
		emitCall(a, precompile.IDEd25519Verify, 0x00, 3, 0x180, 0)
		returnOut(a, 0x180)
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		return code
	}

	res := runBoth(t, build(sig), 200_000)
	if res.Err != nil || res.Reverted || res.ReturnData[31] != 1 {
		t.Fatalf("valid signature rejected: %+v", res)
	}
	bad := append([]byte(nil), sig...)
	bad[0] ^= 1
	res = runBoth(t, build(bad), 200_000)
	if res.Err != nil || res.Reverted || res.ReturnData[31] != 0 {
		t.Fatalf("corrupted signature accepted: %+v", res)
	}
}

// TestPrecompileMalformedDescriptors: every malformed CALL pushes 0 (the
// revert path in returnOut) while keeping the gas charged so far; both
// engines must agree.
func TestPrecompileMalformedDescriptors(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *Assembler)
	}{
		{"nonzero-value", func(a *Assembler) {
			emitDescriptor(a, 0x00, [][2]uint64{{0x200, 4}})
			emitCall(a, precompile.IDSha256, 0x00, 1, 0x180, 7)
		}},
		{"unaligned-insize", func(a *Assembler) {
			// inSize 33 is not a multiple of 64.
			a.PushUint(32).PushUint(0x180).PushUint(33).PushUint(0)
			a.PushUint(0).PushUint(uint64(precompile.IDSha256)).PushUint(0)
			a.Op(CALL)
		}},
		{"arity-mismatch", func(a *Assembler) {
			// bytes_equal demands exactly two ranges.
			emitDescriptor(a, 0x00, [][2]uint64{{0x200, 4}})
			emitCall(a, precompile.IDBytesEqual, 0x00, 1, 0x180, 0)
		}},
		{"huge-descriptor-word", func(a *Assembler) {
			// Offset word with a bit above 2^64 must be rejected, not
			// truncated.
			a.Push(new(big.Int).Lsh(big.NewInt(1), 64)).PushUint(0).Op(MSTORE)
			a.PushUint(4).PushUint(32).Op(MSTORE)
			emitCall(a, precompile.IDSha256, 0x00, 1, 0x180, 0)
		}},
		{"too-many-ranges", func(a *Assembler) {
			var ranges [][2]uint64
			for i := 0; i < 17; i++ {
				ranges = append(ranges, [2]uint64{0x400, 1})
			}
			emitDescriptor(a, 0x00, ranges)
			emitCall(a, precompile.IDSha256, 0x00, len(ranges), 0x180, 0)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := NewAssembler()
			c.build(a)
			returnOut(a, 0x180)
			code, err := a.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			res := runBoth(t, code, 300_000)
			if res.Err != nil {
				t.Fatalf("malformed descriptor must not halt: %+v", res)
			}
			if !res.Reverted {
				t.Fatal("CALL must push 0 for a malformed descriptor")
			}
		})
	}
}

func TestPrecompileOutOfGas(t *testing.T) {
	// The ed25519 entry charges a flat 3000; a tighter limit halts
	// exceptionally, identically on both engines.
	a := NewAssembler()
	emitDescriptor(a, 0x00, [][2]uint64{{0x200, 32}, {0x240, 32}, {0x280, 64}})
	emitCall(a, precompile.IDEd25519Verify, 0x00, 3, 0x180, 0)
	returnOut(a, 0x180)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// Find the gas the healthy run needs, then rerun just below it.
	healthy := runBoth(t, code, 200_000)
	if healthy.Err != nil {
		t.Fatalf("healthy run failed: %+v", healthy)
	}
	res := runBoth(t, code, healthy.GasUsed-1)
	if res.Err == nil {
		t.Fatal("expected out-of-gas halt")
	}
	if res.GasUsed != healthy.GasUsed-1 {
		t.Fatalf("exceptional halt must consume the full limit: used %d of %d", res.GasUsed, healthy.GasUsed-1)
	}
}

// TestPrecompileGasScales: charged gas grows with the referenced bytes (the
// per-word component), and a larger input costs exactly GasWord more per
// extra word on both engines.
func TestPrecompileGasScales(t *testing.T) {
	gasFor := func(n uint64) uint64 {
		a := NewAssembler()
		// Pre-expand memory past every range so expansion gas is identical
		// and only the precompile's per-word term differs.
		a.PushUint(0).PushUint(0x400).Op(MSTORE)
		emitDescriptor(a, 0x00, [][2]uint64{{0x200, n}})
		emitCall(a, precompile.IDSha256, 0x00, 1, 0x180, 0)
		returnOut(a, 0x180)
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		res := runBoth(t, code, 200_000)
		if res.Err != nil || res.Reverted {
			t.Fatalf("hash of %d zero bytes failed: %+v", n, res)
		}
		return res.GasUsed
	}
	p := precompile.ByID(precompile.IDSha256)
	if diff := gasFor(64) - gasFor(32); diff != p.GasWord {
		t.Fatalf("one extra word costs %d gas, want %d", diff, p.GasWord)
	}
}
