package evm

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"agnopol/internal/chain"
)

func run(t *testing.T, build func(a *Assembler), opts ...func(*Context)) Result {
	t.Helper()
	a := NewAssembler()
	build(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{
		State:    NewMemState(),
		GasLimit: 1_000_000,
		Value:    new(big.Int),
	}
	for _, o := range opts {
		o(&ctx)
	}
	return Execute(ctx, code)
}

// returnTop makes a program return its stack top as 32 bytes.
func returnTop(a *Assembler) {
	a.PushUint(0).Op(MSTORE).PushUint(32).PushUint(0).Op(RETURN)
}

func wantReturn(t *testing.T, res Result, want uint64) {
	t.Helper()
	if res.Err != nil || res.Reverted {
		t.Fatalf("execution failed: %+v", res)
	}
	got := new(big.Int).SetBytes(res.ReturnData).Uint64()
	if got != want {
		t.Fatalf("returned %d, want %d", got, want)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *Assembler)
		want  uint64
	}{
		// Noncommutative ops: top operand is the left-hand side.
		{"sub", func(a *Assembler) { a.PushUint(3).PushUint(10).Op(SUB); returnTop(a) }, 7},
		{"div", func(a *Assembler) { a.PushUint(4).PushUint(20).Op(DIV); returnTop(a) }, 5},
		{"mod", func(a *Assembler) { a.PushUint(7).PushUint(20).Op(MOD); returnTop(a) }, 6},
		{"div-by-zero", func(a *Assembler) { a.PushUint(0).PushUint(20).Op(DIV); returnTop(a) }, 0},
		{"mod-by-zero", func(a *Assembler) { a.PushUint(0).PushUint(20).Op(MOD); returnTop(a) }, 0},
		{"add", func(a *Assembler) { a.PushUint(2).PushUint(40).Op(ADD); returnTop(a) }, 42},
		{"mul", func(a *Assembler) { a.PushUint(6).PushUint(7).Op(MUL); returnTop(a) }, 42},
		{"lt-true", func(a *Assembler) { a.PushUint(9).PushUint(3).Op(LT); returnTop(a) }, 1},
		{"lt-false", func(a *Assembler) { a.PushUint(3).PushUint(9).Op(LT); returnTop(a) }, 0},
		{"gt", func(a *Assembler) { a.PushUint(3).PushUint(9).Op(GT); returnTop(a) }, 1},
		{"eq", func(a *Assembler) { a.PushUint(5).PushUint(5).Op(EQ); returnTop(a) }, 1},
		{"iszero", func(a *Assembler) { a.PushUint(0).Op(ISZERO); returnTop(a) }, 1},
		{"and", func(a *Assembler) { a.PushUint(0b1100).PushUint(0b1010).Op(AND); returnTop(a) }, 0b1000},
		{"or", func(a *Assembler) { a.PushUint(0b1100).PushUint(0b1010).Op(OR); returnTop(a) }, 0b1110},
		{"xor", func(a *Assembler) { a.PushUint(0b1100).PushUint(0b1010).Op(XOR); returnTop(a) }, 0b0110},
		{"shl", func(a *Assembler) { a.PushUint(3).PushUint(4).Op(SHL); returnTop(a) }, 48},
		{"shr", func(a *Assembler) { a.PushUint(48).PushUint(4).Op(SHR); returnTop(a) }, 3},
		{"exp", func(a *Assembler) { a.PushUint(10).PushUint(2).Op(EXP); returnTop(a) }, 1024},
		{"byte", func(a *Assembler) { a.PushUint(0xAB).PushUint(31).Op(BYTE); returnTop(a) }, 0xAB},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantReturn(t, run(t, c.build), c.want)
		})
	}
}

func TestArithmeticWrapsAt256Bits(t *testing.T) {
	maxWord := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	res := run(t, func(a *Assembler) {
		a.PushUint(1).Push(maxWord).Op(ADD)
		returnTop(a)
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if new(big.Int).SetBytes(res.ReturnData).Sign() != 0 {
		t.Fatalf("max+1 = %x, want 0 (wraparound)", res.ReturnData)
	}
	// SUB underflow wraps to max.
	res = run(t, func(a *Assembler) {
		a.PushUint(1).PushUint(0).Op(SUB)
		returnTop(a)
	})
	if got := new(big.Int).SetBytes(res.ReturnData); got.Cmp(maxWord) != 0 {
		t.Fatalf("0-1 = %x, want 2^256-1", got)
	}
}

func TestStackErrors(t *testing.T) {
	res := run(t, func(a *Assembler) { a.Op(ADD) })
	if !errors.Is(res.Err, ErrStackUnderflow) {
		t.Fatalf("err = %v, want underflow", res.Err)
	}
	if res.GasUsed != 1_000_000 {
		t.Fatal("exceptional halt must consume all gas")
	}
}

func TestInvalidJump(t *testing.T) {
	res := run(t, func(a *Assembler) { a.PushUint(1).Op(JUMP) })
	if !errors.Is(res.Err, ErrInvalidJump) {
		t.Fatalf("err = %v, want invalid jump", res.Err)
	}
	// Jumping into PUSH data is invalid even if the byte is 0x5b.
	a := NewAssembler()
	a.PushBytes([]byte{byte(JUMPDEST)}) // PUSH1 0x5b: data byte at offset 1
	a.Op(POP)
	a.PushUint(1).Op(JUMP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res = Execute(Context{State: NewMemState(), GasLimit: 100000, Value: new(big.Int)}, code)
	if !errors.Is(res.Err, ErrInvalidJump) {
		t.Fatalf("jump into push data: err = %v", res.Err)
	}
}

func TestJumpFlow(t *testing.T) {
	res := run(t, func(a *Assembler) {
		a.PushUint(1).JumpI("skip")
		a.PushUint(111) // skipped
		returnTop(a)
		a.Label("skip")
		a.PushUint(222)
		returnTop(a)
	})
	wantReturn(t, res, 222)
}

func TestStorageAndRefunds(t *testing.T) {
	st := NewMemState()
	// Store then clear a slot: clearing earns the Rsclear refund, capped
	// at gasUsed/5 by the chain layer (here we check the raw counter).
	a := NewAssembler()
	a.PushUint(7).PushUint(1).Op(SSTORE) // slot1 = 7 (cold, set: 22100)
	a.PushUint(0).PushUint(1).Op(SSTORE) // slot1 = 0 (warm, clear: 2900 + refund)
	a.Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(Context{State: st, GasLimit: 100000, Value: new(big.Int)}, code)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Second write hits a *dirty* slot (already written this tx), which
	// EIP-2200/2929 charges at warm-access cost, not Gsreset.
	wantGas := uint64(3+3) + (GasColdSLoad + GasSSet) + (3 + 3) + GasWarmAccess
	if res.GasUsed != wantGas {
		t.Fatalf("gas = %d, want %d", res.GasUsed, wantGas)
	}
	if res.Refund != RefundSClear {
		t.Fatalf("refund = %d, want %d", res.Refund, RefundSClear)
	}
	if st.GetStorage(chain.Address{}, wordKey(1)) != (chain.Hash32{}) {
		t.Fatal("slot not cleared")
	}
}

func wordKey(v uint64) chain.Hash32 {
	var h chain.Hash32
	new(big.Int).SetUint64(v).FillBytes(h[:])
	return h
}

func TestWarmColdAccounting(t *testing.T) {
	// Two SLOADs of the same slot: cold then warm.
	res := run(t, func(a *Assembler) {
		a.PushUint(5).Op(SLOAD, POP)
		a.PushUint(5).Op(SLOAD, POP)
		a.Op(STOP)
	})
	want := uint64(3) + GasColdSLoad + 2 + 3 + GasWarmAccess + 2
	if res.GasUsed != want {
		t.Fatalf("gas = %d, want %d", res.GasUsed, want)
	}
}

func TestSStoreDirtyWriteCheap(t *testing.T) {
	// Writing the same slot twice in one tx: second write is dirty (100).
	res := run(t, func(a *Assembler) {
		a.PushUint(1).PushUint(9).Op(SSTORE)
		a.PushUint(2).PushUint(9).Op(SSTORE)
		a.Op(STOP)
	})
	want := uint64(6) + GasColdSLoad + GasSSet + 6 + GasWarmAccess
	if res.GasUsed != want {
		t.Fatalf("gas = %d, want %d", res.GasUsed, want)
	}
}

func TestRevertRestoresState(t *testing.T) {
	st := NewMemState()
	a := NewAssembler()
	a.PushUint(7).PushUint(1).Op(SSTORE)
	a.PushUint(0).PushUint(0).Op(REVERT)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(Context{State: st, GasLimit: 100000, Value: new(big.Int)}, code)
	if !res.Reverted {
		t.Fatal("expected revert")
	}
	if st.GetStorage(chain.Address{}, wordKey(1)) != (chain.Hash32{}) {
		t.Fatal("reverted SSTORE persisted")
	}
	if res.Refund != 0 {
		t.Fatal("revert must zero the refund counter")
	}
}

func TestRevertMessage(t *testing.T) {
	res := run(t, func(a *Assembler) {
		msg := []byte("nope")
		padded := make([]byte, 32)
		copy(padded, msg)
		a.PushBytes(padded).PushUint(0).Op(MSTORE)
		a.PushUint(4).PushUint(0).Op(REVERT)
	})
	if !res.Reverted || res.RevertMsg != "nope" {
		t.Fatalf("revert msg = %q", res.RevertMsg)
	}
}

func TestCallTransfersValue(t *testing.T) {
	st := NewMemState()
	self := chain.AddressFromBytes([]byte("self"))
	to := chain.AddressFromBytes([]byte("to"))
	st.AddBalance(self, big.NewInt(100))
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0) // out/in
	a.PushUint(40)                                    // value
	a.Push(new(big.Int).SetBytes(to[:]))              // to
	a.PushUint(0).Op(CALL)                            // gas
	returnTop(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(Context{State: st, Address: self, GasLimit: 100000, Value: new(big.Int)}, code)
	wantReturn(t, res, 1)
	if st.GetBalance(to).Int64() != 40 {
		t.Fatalf("recipient balance %s", st.GetBalance(to))
	}
	if st.GetBalance(self).Int64() != 60 {
		t.Fatalf("sender balance %s", st.GetBalance(self))
	}
}

func TestCallInsufficientBalanceReturnsZero(t *testing.T) {
	st := NewMemState()
	self := chain.AddressFromBytes([]byte("poor"))
	a := NewAssembler()
	a.PushUint(0).PushUint(0).PushUint(0).PushUint(0)
	a.PushUint(40)
	a.PushUint(0xdead)
	a.PushUint(0).Op(CALL)
	returnTop(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(Context{State: st, Address: self, GasLimit: 100000, Value: new(big.Int)}, code)
	wantReturn(t, res, 0)
}

func TestOutOfGas(t *testing.T) {
	a := NewAssembler()
	a.PushUint(1).PushUint(1).Op(SSTORE).Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(Context{State: NewMemState(), GasLimit: 1000, Value: new(big.Int)}, code)
	if !errors.Is(res.Err, ErrOutOfGas) {
		t.Fatalf("err = %v, want out of gas", res.Err)
	}
	if res.GasUsed != 1000 {
		t.Fatal("OOG must consume the full limit")
	}
}

func TestMemoryExpansionGas(t *testing.T) {
	// MSTORE at offset 0 vs offset 4096: the latter pays quadratic
	// expansion.
	near := run(t, func(a *Assembler) {
		a.PushUint(1).PushUint(0).Op(MSTORE, STOP)
	})
	far := run(t, func(a *Assembler) {
		a.PushUint(1).PushUint(4096).Op(MSTORE, STOP)
	})
	words := uint64((4096 + 32 + 31) / 32)
	wantDelta := memoryGas(words) - memoryGas(1)
	if far.GasUsed-near.GasUsed != wantDelta {
		t.Fatalf("expansion delta = %d, want %d", far.GasUsed-near.GasUsed, wantDelta)
	}
}

func TestIntrinsicGas(t *testing.T) {
	if got := IntrinsicGas(nil, false); got != GasTransaction {
		t.Fatalf("empty tx intrinsic %d", got)
	}
	data := []byte{0, 0, 1, 2}
	want := uint64(GasTransaction + 2*GasTxDataZero + 2*GasTxDataNonZero)
	if got := IntrinsicGas(data, false); got != want {
		t.Fatalf("intrinsic %d, want %d", got, want)
	}
	if got := IntrinsicGas(nil, true); got != GasTransaction+GasTxCreate {
		t.Fatalf("create intrinsic %d", got)
	}
}

func TestCalldataAndEnvironment(t *testing.T) {
	caller := chain.AddressFromBytes([]byte("caller"))
	res := run(t, func(a *Assembler) {
		a.Op(CALLER)
		returnTop(a)
	}, func(c *Context) { c.Caller = caller })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var got chain.Address
	copy(got[:], res.ReturnData[12:])
	if got != caller {
		t.Fatalf("CALLER = %s", got)
	}

	res = run(t, func(a *Assembler) {
		a.PushUint(0).Op(CALLDATALOAD)
		returnTop(a)
	}, func(c *Context) {
		c.CallData = append(make([]byte, 24), 0, 0, 0, 0, 0, 0, 0, 99)
	})
	wantReturn(t, res, 99)

	res = run(t, func(a *Assembler) { a.Op(CALLDATASIZE); returnTop(a) },
		func(c *Context) { c.CallData = make([]byte, 77) })
	wantReturn(t, res, 77)

	res = run(t, func(a *Assembler) { a.Op(TIMESTAMP); returnTop(a) },
		func(c *Context) { c.Timestamp = 1234 })
	wantReturn(t, res, 1234)

	res = run(t, func(a *Assembler) { a.Op(NUMBER); returnTop(a) },
		func(c *Context) { c.BlockNumber = 55 })
	wantReturn(t, res, 55)
}

func TestLogs(t *testing.T) {
	res := run(t, func(a *Assembler) {
		a.PushBytes(append([]byte("event!"), make([]byte, 26)...)).PushUint(0).Op(MSTORE)
		a.PushUint(0xfeed) // topic
		a.PushUint(6).PushUint(0)
		a.Op(LOG1, STOP)
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Logs) != 1 {
		t.Fatalf("logs = %d", len(res.Logs))
	}
	if string(res.Logs[0].Data) != "event!" {
		t.Fatalf("log data %q", res.Logs[0].Data)
	}
	if len(res.Logs[0].Topics) != 1 || res.Logs[0].Topics[0] != wordKey(0xfeed) {
		t.Fatalf("topics %v", res.Logs[0].Topics)
	}
}

func TestDupSwap(t *testing.T) {
	res := run(t, func(a *Assembler) {
		a.PushUint(1).PushUint(2).PushUint(3)
		a.Op(SWAP2) // [3,2,1]
		a.Op(DUP3)  // [3,2,1,3]
		a.Op(ADD)   // [3,2,4]
		returnTop(a)
	})
	wantReturn(t, res, 4)
}

// TestGasMonotonicInDataSize: executing the same storage-writing loop with
// more iterations must cost strictly more gas.
func TestGasMonotonicInDataSize(t *testing.T) {
	gasFor := func(n uint64) uint64 {
		a := NewAssembler()
		a.PushUint(0)
		a.Label("loop")
		a.Op(DUP1).PushUint(n).Op(SWAP1, LT, ISZERO)
		a.PushLabel("end").Op(JUMPI)
		a.PushUint(1).Op(DUP2, SSTORE)
		a.PushUint(1).Op(ADD)
		a.Jump("loop")
		a.Label("end").Op(STOP)
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		res := Execute(Context{State: NewMemState(), GasLimit: 10_000_000, Value: new(big.Int)}, code)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.GasUsed
	}
	err := quick.Check(func(x uint8) bool {
		n := uint64(x)%20 + 1
		return gasFor(n+1) > gasFor(n)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	a := NewAssembler()
	a.PushUint(5).PushUint(3).Op(ADD)
	a.Jump("end")
	a.Label("end").Op(STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(code)
	for _, want := range []string{"PUSH1 0x05", "ADD", "JUMPDEST", "STOP"} {
		if !contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAssembler()
	a.Jump("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("undefined label accepted")
	}
	b := NewAssembler()
	b.Label("x")
	b.Label("x")
	if _, err := b.Assemble(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}
