//go:build !race

package evm

const raceEnabled = false
