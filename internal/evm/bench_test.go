package evm

import (
	"testing"

	"agnopol/internal/chain"
)

// Benchmark programs: tight loops of one opcode family, bounded by gas so a
// single Execute runs thousands of operations. Each family is benchmarked
// on both engines; `go test -bench . -benchmem ./internal/evm/` shows the
// ns/op and allocs/op delta the u256 rewrite buys.

// loopProgram wraps body in a counted loop: i starts at n and decrements
// until zero. Layout: PUSH2 n JUMPDEST <body> PUSH1 1 SWAP1 SUB DUP1
// PUSH1 dest JUMPI STOP.
func loopProgram(n uint16, body []byte) []byte {
	p := []byte{byte(PUSH1) + 1, byte(n >> 8), byte(n)}
	dest := len(p)
	p = append(p, byte(JUMPDEST))
	p = append(p, body...)
	p = append(p, byte(PUSH1), 1, byte(SWAP1), byte(SUB), byte(DUP1))
	p = append(p, byte(PUSH1), byte(dest), byte(JUMPI), byte(STOP))
	return p
}

var benchPrograms = []struct {
	name string
	code []byte
}{
	{"arith", loopProgram(1000, []byte{
		byte(DUP1), byte(DUP1), byte(MUL), byte(DUP1), byte(ADD),
		byte(DUP1), byte(SUB), byte(POP),
	})},
	{"divmod", loopProgram(1000, []byte{
		byte(DUP1), byte(PUSH1), 0xff, byte(DUP1), byte(DIV),
		byte(DUP1), byte(PUSH1), 7, byte(MOD), byte(POP), byte(POP), byte(POP),
	})},
	{"bitops", loopProgram(1000, []byte{
		byte(DUP1), byte(NOT), byte(DUP1), byte(AND), byte(PUSH1), 3,
		byte(SHL), byte(PUSH1), 2, byte(SHR), byte(POP),
	})},
	{"memory", loopProgram(500, []byte{
		byte(DUP1), byte(PUSH1), 64, byte(MSTORE),
		byte(PUSH1), 64, byte(MLOAD), byte(POP),
	})},
	{"keccak", loopProgram(200, []byte{
		byte(PUSH1), 32, byte(PUSH1), 0, byte(KECCAK256), byte(POP),
	})},
	{"storage", loopProgram(100, []byte{
		byte(DUP1), byte(PUSH1), 5, byte(SSTORE),
		byte(PUSH1), 5, byte(SLOAD), byte(POP),
	})},
	{"exp", loopProgram(100, []byte{
		byte(DUP1), byte(PUSH1), 3, byte(EXP), byte(POP),
	})},
}

func benchExecute(b *testing.B, code []byte, exec func(Context, []byte) Result) {
	b.Helper()
	st := NewMemState()
	ctx := Context{
		State:    st,
		Address:  chain.Address{0xaa},
		Caller:   chain.Address{0xbb},
		GasLimit: 10_000_000,
	}
	// Sanity: the program must halt normally before we measure it.
	if res := exec(ctx, code); res.Err != nil {
		b.Fatalf("bench program: %v", res.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec(ctx, code)
	}
}

func BenchmarkOpcodes(b *testing.B) {
	for _, p := range benchPrograms {
		b.Run(p.name+"/u256", func(b *testing.B) { benchExecute(b, p.code, Execute) })
		b.Run(p.name+"/bigint", func(b *testing.B) { benchExecute(b, p.code, ExecuteRef) })
	}
}

// TestKeccakLoopZeroAllocs pins the hot-loop allocation contract of the
// hashing path: the KECCAK256 handler must not allocate a hasher (or
// anything else) per op, so a whole Execute of the keccak loop program is
// allocation-free once the interpreter pool is warm.
func TestKeccakLoopZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the 0 allocs/op contract is asserted in the non-race leg")
	}
	var code []byte
	for _, p := range benchPrograms {
		if p.name == "keccak" {
			code = p.code
		}
	}
	if code == nil {
		t.Fatal("keccak bench program missing")
	}
	ctx := Context{
		State:    NewMemState(),
		Address:  chain.Address{0xaa},
		Caller:   chain.Address{0xbb},
		GasLimit: 10_000_000,
	}
	if res := Execute(ctx, code); res.Err != nil {
		t.Fatalf("keccak program: %v", res.Err)
	}
	if avg := testing.AllocsPerRun(20, func() { Execute(ctx, code) }); avg != 0 {
		t.Fatalf("keccak loop allocates %.1f objects per Execute, want 0", avg)
	}
}
