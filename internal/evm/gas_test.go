package evm

import (
	"math/big"
	"testing"
)

func TestKeccakGasScalesWithWords(t *testing.T) {
	gasFor := func(size uint64) uint64 {
		res := run2(t, func(a *Assembler) {
			a.PushUint(size).PushUint(0).Op(KECCAK256, POP, STOP)
		})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.GasUsed
	}
	// 32 bytes = 1 word; 64 bytes = 2 words: +6 gas per word, plus one
	// extra memory word of expansion (3 gas + negligible quadratic term).
	g32, g64 := gasFor(32), gasFor(64)
	if g64-g32 != GasKeccak256Word+GasMemory {
		t.Fatalf("keccak word delta = %d, want %d", g64-g32, GasKeccak256Word+GasMemory)
	}
	// Zero-size hash still pays the flat 30: PUSH+PUSH+KECCAK+POP+STOP.
	if g0 := gasFor(0); g0 != 2*GasVeryLow+GasKeccak256+GasBase {
		t.Fatalf("empty keccak gas = %d", g0)
	}
}

func TestExpGasScalesWithExponentBytes(t *testing.T) {
	gasFor := func(exp *big.Int) uint64 {
		res := run2(t, func(a *Assembler) {
			a.Push(exp).PushUint(2).Op(EXP, POP, STOP)
		})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.GasUsed
	}
	oneByte := gasFor(big.NewInt(0xff))
	twoBytes := gasFor(big.NewInt(0xffff))
	if twoBytes-oneByte != GasExpByte {
		t.Fatalf("exp byte delta = %d, want %d", twoBytes-oneByte, GasExpByte)
	}
}

func TestCalldataLoadBeyondEndIsZeroPadded(t *testing.T) {
	res := run2(t, func(a *Assembler) {
		a.PushUint(100).Op(CALLDATALOAD)
		a.PushUint(0).Op(MSTORE)
		a.PushUint(32).PushUint(0).Op(RETURN)
	}, func(c *Context) { c.CallData = []byte{1, 2, 3} })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if new(big.Int).SetBytes(res.ReturnData).Sign() != 0 {
		t.Fatalf("out-of-range calldata = %x, want zeros", res.ReturnData)
	}
}

func TestLogGasIncludesTopicsAndData(t *testing.T) {
	log0 := run2(t, func(a *Assembler) {
		a.PushUint(8).PushUint(0).Op(LOG0, STOP)
	}).GasUsed
	log2 := run2(t, func(a *Assembler) {
		a.PushUint(1).PushUint(2).PushUint(8).PushUint(0).Op(LOG2, STOP)
	}).GasUsed
	wantDelta := 2*GasLogTopic + 2*GasVeryLow // two extra topics + their pushes
	if log2-log0 != uint64(wantDelta) {
		t.Fatalf("LOG2-LOG0 delta = %d, want %d", log2-log0, wantDelta)
	}
}

// run2 is a local harness (vm_test.go has its own `run` with *testing.T
// assertions; this one is minimal).
func run2(t *testing.T, build func(a *Assembler), opts ...func(*Context)) Result {
	t.Helper()
	a := NewAssembler()
	build(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{State: NewMemState(), GasLimit: 1_000_000, Value: new(big.Int)}
	for _, o := range opts {
		o(&ctx)
	}
	return Execute(ctx, code)
}
