package evm

import (
	"math/big"
	"strings"
	"testing"
)

func TestAssemblerPushSizes(t *testing.T) {
	a := NewAssembler()
	a.PushUint(0)                                // PUSH1 00
	a.PushUint(0xff)                             // PUSH1
	a.PushUint(0x100)                            // PUSH2
	a.Push(new(big.Int).Lsh(big.NewInt(1), 248)) // PUSH32
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(code)
	for _, want := range []string{"PUSH1 0x00", "PUSH1 0xff", "PUSH2 0x0100", "PUSH32"} {
		if !strings.Contains(dis, want) {
			t.Fatalf("missing %q in:\n%s", want, dis)
		}
	}
}

func TestAssemblerRejectsBadPushes(t *testing.T) {
	a := NewAssembler()
	a.Push(big.NewInt(-1))
	if _, err := a.Assemble(); err == nil {
		t.Fatal("negative push accepted")
	}
	b := NewAssembler()
	b.Push(new(big.Int).Lsh(big.NewInt(1), 256))
	if _, err := b.Assemble(); err == nil {
		t.Fatal("33-byte push accepted")
	}
	c := NewAssembler()
	c.PushBytes(nil)
	if _, err := c.Assemble(); err == nil {
		t.Fatal("empty PushBytes accepted")
	}
	d := NewAssembler()
	d.PushBytes(make([]byte, 33))
	if _, err := d.Assemble(); err == nil {
		t.Fatal("oversized PushBytes accepted")
	}
}

func TestAssemblerCodeSizeLimit(t *testing.T) {
	a := NewAssembler()
	for i := 0; i < 0x8001; i++ {
		a.Op(STOP, STOP)
	}
	a.Label("x") // labels force the PUSH2 space check
	a.Jump("x")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("code beyond PUSH2 label space accepted")
	}
}

func TestOpcodeNames(t *testing.T) {
	cases := map[Opcode]string{
		ADD: "ADD", PUSH1: "PUSH1", PUSH32: "PUSH32",
		DUP1: "DUP1", DUP16: "DUP16", SWAP3: "SWAP3",
		Opcode(0xfe): "INVALID(0xfe)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%#x.String() = %q, want %q", byte(op), got, want)
		}
	}
	if n, ok := PUSH4ish(); !ok || n != 4 {
		t.Fatalf("IsPush(PUSH4) = %d,%v", n, ok)
	}
	if _, ok := ADD.IsPush(); ok {
		t.Fatal("ADD reported as push")
	}
}

func PUSH4ish() (int, bool) { return (PUSH1 + 3).IsPush() }

func TestMemStateAccounting(t *testing.T) {
	s := NewMemState()
	var a [20]byte
	a[0] = 1
	if s.AccountExists(a) {
		t.Fatal("fresh state has accounts")
	}
	s.AddBalance(a, big.NewInt(10))
	if !s.AccountExists(a) {
		t.Fatal("credited account missing")
	}
	s.SubBalance(a, big.NewInt(4))
	if got := s.GetBalance(a).Int64(); got != 6 {
		t.Fatalf("balance %d", got)
	}
	// Returned balances are copies.
	s.GetBalance(a).SetInt64(999)
	if got := s.GetBalance(a).Int64(); got != 6 {
		t.Fatal("balance aliased")
	}
}
