package evm

import (
	"fmt"
	"math/big"
	"strings"
)

// Assembler builds EVM bytecode with symbolic labels, the backend target of
// the contract-language compiler.
type Assembler struct {
	code   []byte
	labels map[string]uint64
	fixups []fixup
	err    error
}

type fixup struct {
	at    int // offset of the 2-byte placeholder
	label string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]uint64)}
}

// Op appends a bare opcode.
func (a *Assembler) Op(ops ...Opcode) *Assembler {
	for _, op := range ops {
		a.code = append(a.code, byte(op))
	}
	return a
}

// Push appends the smallest PUSHn that fits v.
func (a *Assembler) Push(v *big.Int) *Assembler {
	if v.Sign() < 0 {
		a.fail(fmt.Errorf("evm: cannot push negative %s", v))
		return a
	}
	b := v.Bytes()
	if len(b) == 0 {
		b = []byte{0}
	}
	if len(b) > 32 {
		a.fail(fmt.Errorf("evm: push value exceeds 32 bytes"))
		return a
	}
	a.code = append(a.code, byte(PUSH1)+byte(len(b)-1))
	a.code = append(a.code, b...)
	return a
}

// PushUint is Push for uint64 immediates.
func (a *Assembler) PushUint(v uint64) *Assembler {
	return a.Push(new(big.Int).SetUint64(v))
}

// PushBytes pushes up to 32 literal bytes (left-padded semantics of PUSH).
func (a *Assembler) PushBytes(b []byte) *Assembler {
	if len(b) == 0 || len(b) > 32 {
		a.fail(fmt.Errorf("evm: push bytes length %d", len(b)))
		return a
	}
	a.code = append(a.code, byte(PUSH1)+byte(len(b)-1))
	a.code = append(a.code, b...)
	return a
}

// PushLabel pushes the (not yet known) offset of a label using PUSH2.
func (a *Assembler) PushLabel(name string) *Assembler {
	a.code = append(a.code, byte(PUSH1)+1) // PUSH2
	a.fixups = append(a.fixups, fixup{at: len(a.code), label: name})
	a.code = append(a.code, 0, 0)
	return a
}

// Label defines a jump target here and emits its JUMPDEST.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("evm: duplicate label %q", name))
		return a
	}
	a.labels[name] = uint64(len(a.code))
	a.code = append(a.code, byte(JUMPDEST))
	return a
}

// Jump emits an unconditional jump to label.
func (a *Assembler) Jump(name string) *Assembler {
	return a.PushLabel(name).Op(JUMP)
}

// JumpI emits a conditional jump (consumes the condition already on the
// stack under the pushed destination).
func (a *Assembler) JumpI(name string) *Assembler {
	return a.PushLabel(name).Op(JUMPI)
}

func (a *Assembler) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// Size returns the current code size in bytes.
func (a *Assembler) Size() int { return len(a.code) }

// Assemble resolves labels and returns the final bytecode.
func (a *Assembler) Assemble() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	if len(a.code) > 0xffff {
		return nil, fmt.Errorf("evm: code size %d exceeds PUSH2 label space", len(a.code))
	}
	out := append([]byte(nil), a.code...)
	for _, f := range a.fixups {
		dest, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("evm: undefined label %q", f.label)
		}
		out[f.at] = byte(dest >> 8)
		out[f.at+1] = byte(dest)
	}
	return out, nil
}

// Disassemble renders bytecode as one instruction per line, for the polc
// tool and for debugging compiled contracts.
func Disassemble(code []byte) string {
	var sb strings.Builder
	for pc := 0; pc < len(code); {
		op := Opcode(code[pc])
		fmt.Fprintf(&sb, "%04x: %s", pc, op)
		if n, ok := op.IsPush(); ok {
			end := pc + 1 + n
			if end > len(code) {
				end = len(code)
			}
			fmt.Fprintf(&sb, " 0x%x", code[pc+1:end])
			pc = end
		} else {
			pc++
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
