// Package evm implements the Ethereum Virtual Machine subset the
// blockchain-agnostic contract language compiles to: a 256-bit stack
// machine with the Yellow-Paper gas schedule reproduced in Fig. 1.4 of the
// thesis (including EIP-2929 warm/cold storage access and EIP-1559-era
// refunds). The Ethereum and Polygon simulators execute contract
// transactions through this VM, so gas — and therefore the fees in
// Tables 5.1–5.4 — comes out of real opcode accounting rather than
// constants.
package evm

import "fmt"

// Opcode is a single EVM instruction.
type Opcode byte

// The opcode subset used by the compiler. Values match the real EVM so
// disassemblies read like Etherscan output.
const (
	STOP         Opcode = 0x00
	ADD          Opcode = 0x01
	MUL          Opcode = 0x02
	SUB          Opcode = 0x03
	DIV          Opcode = 0x04
	MOD          Opcode = 0x06
	EXP          Opcode = 0x0a
	LT           Opcode = 0x10
	GT           Opcode = 0x11
	EQ           Opcode = 0x14
	ISZERO       Opcode = 0x15
	AND          Opcode = 0x16
	OR           Opcode = 0x17
	XOR          Opcode = 0x18
	NOT          Opcode = 0x19
	BYTE         Opcode = 0x1a
	SHL          Opcode = 0x1b
	SHR          Opcode = 0x1c
	KECCAK256    Opcode = 0x20
	ADDRESS      Opcode = 0x30
	BALANCE      Opcode = 0x31
	CALLER       Opcode = 0x33
	CALLVALUE    Opcode = 0x34
	CALLDATALOAD Opcode = 0x35
	CALLDATASIZE Opcode = 0x36
	CALLDATACOPY Opcode = 0x37
	TIMESTAMP    Opcode = 0x42
	NUMBER       Opcode = 0x43
	SELFBALANCE  Opcode = 0x47
	POP          Opcode = 0x50
	MLOAD        Opcode = 0x51
	MSTORE       Opcode = 0x52
	SLOAD        Opcode = 0x54
	SSTORE       Opcode = 0x55
	JUMP         Opcode = 0x56
	JUMPI        Opcode = 0x57
	PC           Opcode = 0x58
	MSIZE        Opcode = 0x59
	GAS          Opcode = 0x5a
	JUMPDEST     Opcode = 0x5b
	PUSH1        Opcode = 0x60
	PUSH32       Opcode = 0x7f
	DUP1         Opcode = 0x80
	DUP2         Opcode = 0x81
	DUP3         Opcode = 0x82
	DUP4         Opcode = 0x83
	DUP5         Opcode = 0x84
	DUP6         Opcode = 0x85
	DUP7         Opcode = 0x86
	DUP8         Opcode = 0x87
	DUP16        Opcode = 0x8f
	SWAP1        Opcode = 0x90
	SWAP2        Opcode = 0x91
	SWAP3        Opcode = 0x92
	SWAP4        Opcode = 0x93
	SWAP5        Opcode = 0x94
	SWAP6        Opcode = 0x95
	SWAP16       Opcode = 0x9f
	LOG0         Opcode = 0xa0
	LOG1         Opcode = 0xa1
	LOG2         Opcode = 0xa2
	CALL         Opcode = 0xf1
	RETURN       Opcode = 0xf3
	REVERT       Opcode = 0xfd
)

var opNames = map[Opcode]string{
	STOP: "STOP", ADD: "ADD", MUL: "MUL", SUB: "SUB", DIV: "DIV", MOD: "MOD",
	EXP: "EXP", LT: "LT", GT: "GT", EQ: "EQ", ISZERO: "ISZERO", AND: "AND",
	OR: "OR", XOR: "XOR", NOT: "NOT", BYTE: "BYTE", SHL: "SHL", SHR: "SHR",
	KECCAK256: "KECCAK256", ADDRESS: "ADDRESS", BALANCE: "BALANCE",
	CALLER: "CALLER", CALLVALUE: "CALLVALUE", CALLDATALOAD: "CALLDATALOAD",
	CALLDATASIZE: "CALLDATASIZE", CALLDATACOPY: "CALLDATACOPY",
	TIMESTAMP: "TIMESTAMP", NUMBER: "NUMBER",
	SELFBALANCE: "SELFBALANCE", POP: "POP", MLOAD: "MLOAD", MSTORE: "MSTORE",
	SLOAD: "SLOAD", SSTORE: "SSTORE", JUMP: "JUMP", JUMPI: "JUMPI", PC: "PC",
	MSIZE: "MSIZE", GAS: "GAS", JUMPDEST: "JUMPDEST", LOG0: "LOG0",
	LOG1: "LOG1", LOG2: "LOG2", CALL: "CALL", RETURN: "RETURN", REVERT: "REVERT",
}

// String renders the opcode mnemonic.
func (op Opcode) String() string {
	switch {
	case op >= PUSH1 && op <= PUSH32:
		return fmt.Sprintf("PUSH%d", op-PUSH1+1)
	case op >= DUP1 && op <= DUP16:
		return fmt.Sprintf("DUP%d", op-DUP1+1)
	case op >= SWAP1 && op <= SWAP16:
		return fmt.Sprintf("SWAP%d", op-SWAP1+1)
	}
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("INVALID(0x%02x)", byte(op))
}

// IsPush reports whether op is PUSH1..PUSH32, and its immediate width.
func (op Opcode) IsPush() (int, bool) {
	if op >= PUSH1 && op <= PUSH32 {
		return int(op-PUSH1) + 1, true
	}
	return 0, false
}
