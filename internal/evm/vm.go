package evm

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"agnopol/internal/chain"
	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
	"agnopol/internal/precompile"
	"agnopol/internal/u256"
)

// Execution errors. Any of them consumes all remaining gas and reverts state
// changes, exactly as on Ethereum.
var (
	ErrOutOfGas       = errors.New("evm: out of gas")
	ErrStackUnderflow = errors.New("evm: stack underflow")
	ErrStackOverflow  = errors.New("evm: stack overflow")
	ErrInvalidJump    = errors.New("evm: invalid jump destination")
	ErrInvalidOpcode  = errors.New("evm: invalid opcode")
	ErrWriteProtect   = errors.New("evm: balance underflow")
)

const stackLimit = 1024

// Log is an emitted event.
type Log struct {
	Address chain.Address
	Topics  []chain.Hash32
	Data    []byte
}

// Context carries everything one contract execution needs.
type Context struct {
	State       StateDB
	Caller      chain.Address
	Address     chain.Address
	Value       *big.Int
	CallData    []byte
	GasLimit    uint64
	BlockNumber uint64
	// Timestamp is the block timestamp in seconds.
	Timestamp uint64
	// Profiler, when non-nil, receives every executed opcode with the
	// gas it consumed (per-opcode gas attribution). The hot path pays a
	// single nil check when unset.
	Profiler obs.Profiler
}

// Result is the outcome of an execution.
type Result struct {
	GasUsed    uint64
	Refund     uint64
	Reverted   bool
	RevertMsg  string
	ReturnData []byte
	Logs       []Log
	// Err is non-nil for exceptional halts (out of gas, bad jump…); those
	// consume the full gas limit.
	Err error
}

// Constant opcode gas as flat tables so the dispatch loop pays an array
// index instead of a map lookup. Populated from constGas (gas.go) at init.
var (
	constGasTab [256]uint64
	hasConstGas [256]bool
)

func init() {
	for op, g := range constGas {
		constGasTab[op] = g
		hasConstGas[op] = true
	}
}

// slotRef keys the flat warm/original-value storage maps. The interpreter
// only ever touches slots of the executing contract plus value-transfer
// targets, so one flat map replaces the per-address nested maps of the
// reference implementation.
type slotRef struct {
	addr chain.Address
	key  chain.Hash32
}

// interpreter is the pooled per-execution state of the fast VM: a fixed
// value-typed u256 stack, reusable byte memory, flat access-list maps and a
// jumpdest bitmap. Everything that does not escape into the Result is
// recycled through interpPool, so a warm Execute allocates only what the
// program itself materializes (logs, return data, journal entries).
type interpreter struct {
	ctx       Context
	state     journaledState
	code      []byte
	callValue u256.Word

	stack  [stackLimit]u256.Word
	sp     int
	mem    []byte
	gas    uint64
	refund uint64
	logs   []Log

	warmAddrs map[chain.Address]bool
	warmSlots map[slotRef]bool
	origSlots map[slotRef]chain.Hash32

	// jumpdests is the valid-destination bitmap for code. scannedPtr/
	// scannedLen identify the code slice it was built from, so repeated
	// executions of the same (immutable) contract code on one pooled
	// interpreter skip the O(len(code)) rescan.
	jumpdests  []bool
	scannedPtr *byte
	scannedLen int

	// pcArgs is the precompileHost scratch for resolved argument ranges.
	pcArgs [maxPrecompileRanges][]byte

	// Opcode profiling state: the opcode whose gas consumption is being
	// accumulated, and the gas level when it started executing. Only
	// touched when ctx.Profiler != nil.
	profOp    Opcode
	profStart uint64
	profArmed bool
}

var interpPool = sync.Pool{New: func() any { return new(interpreter) }}

// profTick attributes the previous opcode's gas (its full consumption is
// known only once the next opcode is reached) and arms accounting for op.
func (in *interpreter) profTick(op Opcode) {
	if in.profArmed {
		in.ctx.Profiler.Op(in.profOp.String(), in.profStart-in.gas)
	}
	in.profArmed = true
	in.profOp = op
	in.profStart = in.gas
}

// profFlush attributes the final opcode before execution returns.
func (in *interpreter) profFlush() {
	if in.profArmed {
		in.ctx.Profiler.Op(in.profOp.String(), in.profStart-in.gas)
		in.profArmed = false
	}
}

// Execute runs code in the given context and returns the result. Gas
// accounting covers opcode execution only; the chain layer adds intrinsic
// transaction gas (IntrinsicGas) and code-deposit gas for deployments.
//
// Semantics are bit-identical to ExecuteRef (the retained big.Int reference
// interpreter); the differential tests in diff_test.go enforce this.
func Execute(ctx Context, code []byte) Result {
	in := interpPool.Get().(*interpreter)
	in.reset(ctx, code)
	res := in.run()
	if res.Err != nil || res.Reverted {
		in.state.j.revert()
	}
	res.Logs = in.logs
	in.release()
	interpPool.Put(in)
	return res
}

// reset prepares a pooled interpreter for one execution.
func (in *interpreter) reset(ctx Context, code []byte) {
	in.ctx = ctx
	in.state = journaledState{inner: ctx.State}
	in.code = code
	in.callValue = u256.FromBig(ctx.Value)
	in.sp = 0
	in.mem = in.mem[:0]
	in.gas = ctx.GasLimit
	in.refund = 0
	in.logs = nil // escapes into Result, never pooled
	if in.warmAddrs == nil {
		in.warmAddrs = make(map[chain.Address]bool, 8)
		in.warmSlots = make(map[slotRef]bool, 16)
		in.origSlots = make(map[slotRef]chain.Hash32, 16)
	}
	in.warmAddrs[ctx.Address] = true
	in.warmAddrs[ctx.Caller] = true
	in.scanJumpdests(code)
	in.profArmed = false
}

// release drops every reference that must not survive in the pool. The logs
// slice escaped into the Result, so only the pointer is cleared; the maps
// keep their buckets (clear preserves capacity) for the next run.
func (in *interpreter) release() {
	in.ctx = Context{}
	in.state = journaledState{}
	in.code = nil
	in.logs = nil
	clear(in.pcArgs[:]) // may reference superseded memory backing arrays
	clear(in.warmAddrs)
	clear(in.warmSlots)
	clear(in.origSlots)
}

// scanJumpdests rebuilds the valid-destination bitmap over code, reusing the
// pooled slice when it is large enough. The bitmap is memoized by code
// identity (data pointer + length): contract code is immutable once stored,
// so a pooled interpreter re-running the same code — the hot pattern under
// block execution — skips the rescan entirely.
func (in *interpreter) scanJumpdests(code []byte) {
	if len(code) > 0 && in.scannedPtr == &code[0] && in.scannedLen == len(code) {
		return
	}
	if cap(in.jumpdests) >= len(code) {
		in.jumpdests = in.jumpdests[:len(code)]
		clear(in.jumpdests)
	} else {
		in.jumpdests = make([]bool, len(code))
	}
	for pc := 0; pc < len(code); {
		op := Opcode(code[pc])
		if op == JUMPDEST {
			in.jumpdests[pc] = true
		}
		if n, ok := op.IsPush(); ok {
			pc += n
		}
		pc++
	}
	if len(code) > 0 {
		in.scannedPtr = &code[0]
	} else {
		in.scannedPtr = nil
	}
	in.scannedLen = len(code)
}

func (in *interpreter) precompileArgs() *[maxPrecompileRanges][]byte {
	return &in.pcArgs
}

func (in *interpreter) useGas(amount uint64) bool {
	if in.gas < amount {
		in.gas = 0
		return false
	}
	in.gas -= amount
	return true
}

func (in *interpreter) push(v u256.Word) error {
	if in.sp >= stackLimit {
		return ErrStackOverflow
	}
	in.stack[in.sp] = v
	in.sp++
	return nil
}

func (in *interpreter) pop() (u256.Word, error) {
	if in.sp == 0 {
		return u256.Word{}, ErrStackUnderflow
	}
	in.sp--
	return in.stack[in.sp], nil
}

// pop2 removes the two topmost words; a was the top of the stack.
func (in *interpreter) pop2() (a, b u256.Word, err error) {
	if in.sp < 2 {
		return a, b, ErrStackUnderflow
	}
	in.sp -= 2
	return in.stack[in.sp+1], in.stack[in.sp], nil
}

// popN copies the topmost len(dst) words into dst in pop order (dst[0] was
// the top). Callers pass a fixed-size local array slice, so nothing heap-
// allocates.
func (in *interpreter) popN(dst []u256.Word) error {
	n := len(dst)
	if in.sp < n {
		return ErrStackUnderflow
	}
	for i := 0; i < n; i++ {
		dst[i] = in.stack[in.sp-1-i]
	}
	in.sp -= n
	return nil
}

// expandMem charges and grows memory to cover [off, off+size). Pooled memory
// is reused by capacity; bytes exposed beyond the previous length are zeroed
// so a recycled buffer behaves exactly like a fresh one.
func (in *interpreter) expandMem(off, size uint64) bool {
	if size == 0 {
		return true
	}
	end := off + size
	if end < off || end > 1<<32 { // overflow or absurd size: treat as OOG
		in.gas = 0
		return false
	}
	curWords := uint64(len(in.mem)+31) / 32
	newWords := (end + 31) / 32
	if newWords > curWords {
		if !in.useGas(memoryGas(newWords) - memoryGas(curWords)) {
			return false
		}
		newLen := int(newWords * 32)
		if newLen <= cap(in.mem) {
			prev := len(in.mem)
			in.mem = in.mem[:newLen]
			clear(in.mem[prev:])
		} else {
			grown := make([]byte, newLen)
			copy(grown, in.mem)
			in.mem = grown
		}
	}
	return true
}

func (in *interpreter) memSlice(off, size uint64) []byte {
	if size == 0 {
		return nil
	}
	return in.mem[off : off+size]
}

func wordToHash32(v u256.Word) chain.Hash32 {
	return chain.Hash32(v.Bytes32())
}

func hash32ToWord(h chain.Hash32) u256.Word {
	return u256.SetBytes(h[:])
}

func wordToAddr(v u256.Word) chain.Address {
	buf := v.Bytes32()
	var a chain.Address
	copy(a[:], buf[12:])
	return a
}

func (in *interpreter) slotWarm(addr chain.Address, key chain.Hash32) bool {
	ref := slotRef{addr, key}
	if in.warmSlots[ref] {
		return true
	}
	in.warmSlots[ref] = true
	return false
}

func (in *interpreter) originalSlot(addr chain.Address, key chain.Hash32) chain.Hash32 {
	ref := slotRef{addr, key}
	if v, ok := in.origSlots[ref]; ok {
		return v
	}
	v := in.state.GetStorage(addr, key)
	in.origSlots[ref] = v
	return v
}

// validJump reports whether dest is a JUMPDEST (64-bit truncated, matching
// big.Int.Uint64 in the reference interpreter).
func (in *interpreter) validJump(dest uint64) bool {
	return dest < uint64(len(in.jumpdests)) && in.jumpdests[dest]
}

//nolint:gocyclo // a bytecode interpreter is one big dispatch by nature.
func (in *interpreter) run() Result {
	fail := func(err error) Result {
		// Exceptional halt: consume everything.
		in.profFlush()
		return Result{GasUsed: in.ctx.GasLimit, Err: err}
	}
	var pc uint64
	for pc < uint64(len(in.code)) {
		op := Opcode(in.code[pc])
		if in.ctx.Profiler != nil {
			in.profTick(op)
		}

		if hasConstGas[op] {
			if !in.useGas(constGasTab[op]) {
				return fail(ErrOutOfGas)
			}
		}

		switch {
		case op >= PUSH1 && op <= PUSH32:
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			n := uint64(op-PUSH1) + 1
			end := pc + 1 + n
			if end > uint64(len(in.code)) {
				end = uint64(len(in.code))
			}
			if err := in.push(u256.SetBytes(in.code[pc+1 : end])); err != nil {
				return fail(err)
			}
			pc += n + 1
			continue

		case op >= DUP1 && op <= DUP16:
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			n := int(op-DUP1) + 1
			if in.sp < n {
				return fail(ErrStackUnderflow)
			}
			if err := in.push(in.stack[in.sp-n]); err != nil {
				return fail(err)
			}
			pc++
			continue

		case op >= SWAP1 && op <= SWAP16:
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			n := int(op-SWAP1) + 1
			if in.sp < n+1 {
				return fail(ErrStackUnderflow)
			}
			top := in.sp - 1
			in.stack[top], in.stack[top-n] = in.stack[top-n], in.stack[top]
			pc++
			continue
		}

		switch op {
		case STOP:
			in.profFlush()
			return Result{GasUsed: in.ctx.GasLimit - in.gas, Refund: in.refund}

		case ADD, MUL, SUB, DIV, MOD, AND, OR, XOR, LT, GT, EQ, SHL, SHR, BYTE:
			a, b, err := in.pop2()
			if err != nil {
				return fail(err)
			}
			var v u256.Word
			switch op {
			case ADD:
				v = a.Add(b)
			case MUL:
				v = a.Mul(b)
			case SUB:
				v = a.Sub(b)
			case DIV:
				v = a.Div(b)
			case MOD:
				v = a.Mod(b)
			case AND:
				v = a.And(b)
			case OR:
				v = a.Or(b)
			case XOR:
				v = a.Xor(b)
			case LT:
				v = u256.FromBool(a.Lt(b))
			case GT:
				v = u256.FromBool(a.Gt(b))
			case EQ:
				v = u256.FromBool(a == b)
			case SHL:
				if a.IsUint64() && a.Uint64() < 256 {
					v = b.Lsh(uint(a.Uint64()))
				}
			case SHR:
				if a.IsUint64() && a.Uint64() < 256 {
					v = b.Rsh(uint(a.Uint64()))
				}
			case BYTE:
				if a.IsUint64() {
					v = b.Byte(a.Uint64())
				}
			}
			if err := in.push(v); err != nil {
				return fail(err)
			}

		case EXP:
			base, exp, err := in.pop2()
			if err != nil {
				return fail(err)
			}
			if !in.useGas(GasExp + GasExpByte*uint64(exp.ByteLen())) {
				return fail(ErrOutOfGas)
			}
			if err := in.push(base.Exp(exp)); err != nil {
				return fail(err)
			}

		case ISZERO, NOT:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			var v u256.Word
			if op == ISZERO {
				v = u256.FromBool(a.IsZero())
			} else {
				v = a.Not()
			}
			if err := in.push(v); err != nil {
				return fail(err)
			}

		case KECCAK256:
			a, b, err := in.pop2()
			if err != nil {
				return fail(err)
			}
			off, size := a.Uint64(), b.Uint64()
			words := (size + 31) / 32
			if !in.useGas(GasKeccak256 + GasKeccak256Word*words) {
				return fail(ErrOutOfGas)
			}
			if !in.expandMem(off, size) {
				return fail(ErrOutOfGas)
			}
			h := polcrypto.Hash1(in.memSlice(off, size))
			if err := in.push(u256.SetBytes(h[:])); err != nil {
				return fail(err)
			}

		case ADDRESS:
			if err := in.push(u256.SetBytes(in.ctx.Address[:])); err != nil {
				return fail(err)
			}
		case CALLER:
			if err := in.push(u256.SetBytes(in.ctx.Caller[:])); err != nil {
				return fail(err)
			}
		case CALLVALUE:
			if err := in.push(in.callValue); err != nil {
				return fail(err)
			}
		case TIMESTAMP:
			if err := in.push(u256.FromUint64(in.ctx.Timestamp)); err != nil {
				return fail(err)
			}
		case NUMBER:
			if err := in.push(u256.FromUint64(in.ctx.BlockNumber)); err != nil {
				return fail(err)
			}
		case SELFBALANCE:
			if err := in.push(u256.FromBig(in.state.GetBalance(in.ctx.Address))); err != nil {
				return fail(err)
			}

		case BALANCE:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			addr := wordToAddr(a)
			cost := uint64(GasColdAccount)
			if in.warmAddrs[addr] {
				cost = GasWarmAccess
			}
			in.warmAddrs[addr] = true
			if !in.useGas(cost) {
				return fail(ErrOutOfGas)
			}
			if err := in.push(u256.FromBig(in.state.GetBalance(addr))); err != nil {
				return fail(err)
			}

		case CALLDATALOAD:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			off := a.Uint64()
			var buf [32]byte
			for i := uint64(0); i < 32; i++ {
				if off+i < uint64(len(in.ctx.CallData)) {
					buf[i] = in.ctx.CallData[off+i]
				}
			}
			if err := in.push(u256.SetBytes(buf[:])); err != nil {
				return fail(err)
			}
		case CALLDATASIZE:
			if err := in.push(u256.FromUint64(uint64(len(in.ctx.CallData)))); err != nil {
				return fail(err)
			}
		case CALLDATACOPY:
			a, b, err := in.pop2()
			if err != nil {
				return fail(err)
			}
			c, err := in.pop()
			if err != nil {
				return fail(err)
			}
			dst, off, size := a.Uint64(), b.Uint64(), c.Uint64()
			words := (size + 31) / 32
			if !in.useGas(GasVeryLow + GasCopy*words) {
				return fail(ErrOutOfGas)
			}
			if !in.expandMem(dst, size) {
				return fail(ErrOutOfGas)
			}
			mem := in.memSlice(dst, size)
			data := in.ctx.CallData
			for i := uint64(0); i < size; i++ {
				if src := off + i; src >= off && src < uint64(len(data)) {
					mem[i] = data[src]
				} else {
					mem[i] = 0
				}
			}

		case POP:
			if _, err := in.pop(); err != nil {
				return fail(err)
			}

		case MLOAD:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			off := a.Uint64()
			if !in.expandMem(off, 32) {
				return fail(ErrOutOfGas)
			}
			if err := in.push(u256.SetBytes(in.memSlice(off, 32))); err != nil {
				return fail(err)
			}
		case MSTORE:
			a, b, err := in.pop2()
			if err != nil {
				return fail(err)
			}
			if !in.useGas(GasVeryLow) {
				return fail(ErrOutOfGas)
			}
			off := a.Uint64()
			if !in.expandMem(off, 32) {
				return fail(ErrOutOfGas)
			}
			b.PutBytes32(in.mem[off : off+32])

		case SLOAD:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			key := wordToHash32(a)
			cost := uint64(GasColdSLoad)
			if in.slotWarm(in.ctx.Address, key) {
				cost = GasWarmAccess
			}
			if !in.useGas(cost) {
				return fail(ErrOutOfGas)
			}
			if err := in.push(hash32ToWord(in.state.GetStorage(in.ctx.Address, key))); err != nil {
				return fail(err)
			}

		case SSTORE:
			a, b, err := in.pop2()
			if err != nil {
				return fail(err)
			}
			key := wordToHash32(a)
			value := wordToHash32(b)
			cost := uint64(0)
			if !in.slotWarm(in.ctx.Address, key) {
				cost += GasColdSLoad
			}
			current := in.state.GetStorage(in.ctx.Address, key)
			original := in.originalSlot(in.ctx.Address, key)
			switch {
			case current == value:
				cost += GasWarmAccess
			case current == original && original == (chain.Hash32{}):
				cost += GasSSet
			case current == original:
				cost += GasSReset
			default:
				cost += GasWarmAccess
			}
			if current != value && value == (chain.Hash32{}) && current != (chain.Hash32{}) {
				in.refund += RefundSClear
			}
			if !in.useGas(cost) {
				return fail(ErrOutOfGas)
			}
			in.state.SetStorage(in.ctx.Address, key, value)

		case JUMP:
			a, err := in.pop()
			if err != nil {
				return fail(err)
			}
			dest := a.Uint64()
			if !in.validJump(dest) {
				return fail(ErrInvalidJump)
			}
			pc = dest
			continue
		case JUMPI:
			a, b, err := in.pop2()
			if err != nil {
				return fail(err)
			}
			if !b.IsZero() {
				dest := a.Uint64()
				if !in.validJump(dest) {
					return fail(ErrInvalidJump)
				}
				pc = dest
				continue
			}

		case PC:
			if err := in.push(u256.FromUint64(pc)); err != nil {
				return fail(err)
			}
		case MSIZE:
			if err := in.push(u256.FromUint64(uint64(len(in.mem)))); err != nil {
				return fail(err)
			}
		case GAS:
			if err := in.push(u256.FromUint64(in.gas)); err != nil {
				return fail(err)
			}
		case JUMPDEST:
			// cost charged via constGas; no effect.

		case LOG0, LOG1, LOG2:
			topicCount := int(op - LOG0)
			var argbuf [4]u256.Word
			args := argbuf[:2+topicCount]
			if err := in.popN(args); err != nil {
				return fail(err)
			}
			off, size := args[0].Uint64(), args[1].Uint64()
			if !in.useGas(GasLog + GasLogTopic*uint64(topicCount) + GasLogData*size) {
				return fail(ErrOutOfGas)
			}
			if !in.expandMem(off, size) {
				return fail(ErrOutOfGas)
			}
			log := Log{Address: in.ctx.Address, Data: append([]byte(nil), in.memSlice(off, size)...)}
			for i := 0; i < topicCount; i++ {
				log.Topics = append(log.Topics, wordToHash32(args[2+i]))
			}
			in.logs = append(in.logs, log)

		case CALL:
			// Value-transfer call (the contract language only transfers to
			// externally-owned accounts; nested contract execution is not
			// part of the compiled programs).
			var argbuf [7]u256.Word
			if err := in.popN(argbuf[:]); err != nil {
				return fail(err)
			}
			to := wordToAddr(argbuf[1])
			if p := precompile.ByAddress(to); p != nil {
				ok, oog := runPrecompile(in, p, argbuf[2].IsZero(),
					argbuf[3].Uint64(), argbuf[4].Uint64(), argbuf[5].Uint64(), argbuf[6].Uint64())
				if oog {
					return fail(ErrOutOfGas)
				}
				if err := in.push(u256.FromBool(ok)); err != nil {
					return fail(err)
				}
				pc++
				continue
			}
			value := argbuf[2]
			cost := uint64(GasColdAccount)
			if in.warmAddrs[to] {
				cost = GasWarmAccess
			}
			in.warmAddrs[to] = true
			if !value.IsZero() {
				cost += GasCallValue
				if !in.state.AccountExists(to) {
					cost += GasNewAccount
				}
			}
			if !in.useGas(cost) {
				return fail(ErrOutOfGas)
			}
			// Balance movement stays on big.Int: the StateDB boundary.
			valueBig := value.ToBig()
			if in.state.GetBalance(in.ctx.Address).Cmp(valueBig) < 0 {
				if err := in.push(u256.Zero); err != nil {
					return fail(err)
				}
			} else {
				in.state.SubBalance(in.ctx.Address, valueBig)
				in.state.AddBalance(to, valueBig)
				if err := in.push(u256.One); err != nil {
					return fail(err)
				}
			}

		case RETURN, REVERT:
			a, b, err := in.pop2()
			if err != nil {
				return fail(err)
			}
			off, size := a.Uint64(), b.Uint64()
			if !in.expandMem(off, size) {
				return fail(ErrOutOfGas)
			}
			data := append([]byte(nil), in.memSlice(off, size)...)
			in.profFlush()
			res := Result{
				GasUsed:    in.ctx.GasLimit - in.gas,
				Refund:     in.refund,
				ReturnData: data,
			}
			if op == REVERT {
				res.Reverted = true
				res.RevertMsg = string(data)
				res.Refund = 0
			}
			return res

		default:
			return fail(fmt.Errorf("%w: %s at pc=%d", ErrInvalidOpcode, op, pc))
		}
		pc++
	}
	in.profFlush()
	return Result{GasUsed: in.ctx.GasLimit - in.gas, Refund: in.refund}
}
