package evm

// Gas schedule constants, matching the Yellow Paper table the thesis
// reproduces as Fig. 1.4.
const (
	GasZero          = 0
	GasJumpdest      = 1
	GasBase          = 2
	GasVeryLow       = 3
	GasLow           = 5
	GasMid           = 8
	GasHigh          = 10
	GasWarmAccess    = 100
	GasColdAccount   = 2600
	GasColdSLoad     = 2100
	GasSSet          = 20000
	GasSReset        = 2900
	RefundSClear     = 15000
	GasCallValue     = 9000
	GasCallStipend   = 2300
	GasNewAccount    = 25000
	GasExp           = 10
	GasExpByte       = 50
	GasMemory        = 3
	GasTxCreate      = 32000
	GasCodeDeposit   = 200
	GasTxDataZero    = 4
	GasTxDataNonZero = 16
	GasTransaction   = 21000
	GasLog           = 375
	GasLogData       = 8
	GasLogTopic      = 375
	GasKeccak256     = 30
	GasKeccak256Word = 6
	GasCopy          = 3
)

// IntrinsicGas is the cost charged before the first opcode executes:
// 21000 per transaction, per-byte calldata cost, and the CREATE surcharge
// for deployments.
func IntrinsicGas(data []byte, isCreate bool) uint64 {
	gas := uint64(GasTransaction)
	if isCreate {
		gas += GasTxCreate
	}
	for _, b := range data {
		if b == 0 {
			gas += GasTxDataZero
		} else {
			gas += GasTxDataNonZero
		}
	}
	return gas
}

// memoryGas returns the total cost of a memory of the given word count:
// Gmemory·a + a²/512 (Yellow Paper eq. 326).
func memoryGas(words uint64) uint64 {
	return GasMemory*words + words*words/512
}

// constGas maps opcodes with flat costs. Dynamic opcodes (SSTORE, SLOAD,
// KECCAK256, EXP, LOG, CALL, memory ops) are charged in the interpreter.
var constGas = map[Opcode]uint64{
	STOP:         GasZero,
	ADD:          GasVeryLow,
	MUL:          GasLow,
	SUB:          GasVeryLow,
	DIV:          GasLow,
	MOD:          GasLow,
	LT:           GasVeryLow,
	GT:           GasVeryLow,
	EQ:           GasVeryLow,
	ISZERO:       GasVeryLow,
	AND:          GasVeryLow,
	OR:           GasVeryLow,
	XOR:          GasVeryLow,
	NOT:          GasVeryLow,
	BYTE:         GasVeryLow,
	SHL:          GasVeryLow,
	SHR:          GasVeryLow,
	ADDRESS:      GasBase,
	CALLER:       GasBase,
	CALLVALUE:    GasBase,
	CALLDATALOAD: GasVeryLow,
	CALLDATASIZE: GasBase,
	TIMESTAMP:    GasBase,
	NUMBER:       GasBase,
	SELFBALANCE:  GasLow,
	POP:          GasBase,
	JUMP:         GasMid,
	JUMPI:        GasHigh,
	PC:           GasBase,
	MSIZE:        GasBase,
	GAS:          GasBase,
	JUMPDEST:     GasJumpdest,
}
