package evm

import (
	"agnopol/internal/precompile"
)

// Precompiled-contract interception (DESIGN.md §14). CALLs to the reserved
// low addresses never reach the value-transfer path: both engines divert
// them here before dispatch and run the native implementation from
// internal/precompile over a zero-copy descriptor.
//
// Descriptor ABI: the CALL input region [inOff, inOff+inSize) holds k
// (offset, length) word pairs, each naming a range of interpreter memory;
// the precompile reads those ranges in place (no copying) and writes its
// 32-byte result word at outOff. Gas: the warm-access cost of the CALL
// (reserved addresses are always warm) plus the entry's GasBase +
// GasWord × ⌈referenced bytes / 32⌉, plus ordinary memory expansion for the
// descriptor, every referenced range and the output region.

// maxPrecompileRanges bounds descriptor fan-in; compiled programs never
// emit more than a handful of ranges.
const maxPrecompileRanges = 16

// precompileHost is the engine surface the interception needs. Both the
// u256 interpreter and the big.Int reference interpreter satisfy it, so one
// shared implementation keeps the two engines bit-identical by
// construction.
type precompileHost interface {
	useGas(amount uint64) bool
	expandMem(off, size uint64) bool
	memSlice(off, size uint64) []byte
	// precompileArgs returns host-owned scratch for the resolved argument
	// ranges. A stack-local buffer would escape through the registry's
	// function-valued entries and cost an allocation per intercepted CALL.
	precompileArgs() *[maxPrecompileRanges][]byte
}

// runPrecompile executes an intercepted CALL. oog=true aborts execution
// with ErrOutOfGas (gas exhausted mid-way, like any other opcode);
// otherwise success is the CALL's 1/0 result: 0 for a malformed descriptor,
// a non-zero value word, or a native-side rejection, with all charged gas
// kept.
func runPrecompile(h precompileHost, p *precompile.Precompiled, valueZero bool, inOff, inSize, outOff, outSize uint64) (success, oog bool) {
	if !h.useGas(GasWarmAccess) {
		return false, true
	}
	if !h.expandMem(inOff, inSize) || !h.expandMem(outOff, outSize) {
		return false, true
	}
	if !valueZero || inSize%64 != 0 {
		return false, false
	}
	pairs := inSize / 64
	if pairs > maxPrecompileRanges {
		return false, false
	}
	if p.Arity != precompile.Variadic && pairs != uint64(p.Arity) {
		return false, false
	}
	// Parse the whole descriptor before expanding any range: expansion may
	// reallocate the backing array under the descriptor slice.
	var offs, lens [maxPrecompileRanges]uint64
	desc := h.memSlice(inOff, inSize)
	for i := uint64(0); i < pairs; i++ {
		var ok bool
		if offs[i], ok = descWord(desc[i*64 : i*64+32]); !ok {
			return false, false
		}
		if lens[i], ok = descWord(desc[i*64+32 : i*64+64]); !ok {
			return false, false
		}
	}
	var total uint64
	for i := uint64(0); i < pairs; i++ {
		if !h.expandMem(offs[i], lens[i]) {
			return false, true
		}
		total += lens[i]
	}
	cost := p.Gas(total)
	if !h.useGas(cost) {
		return false, true
	}
	args := h.precompileArgs()[:pairs]
	for i := uint64(0); i < pairs; i++ {
		args[i] = h.memSlice(offs[i], lens[i])
	}
	res, ok := p.Native(cost, args...)
	if !ok {
		return false, false
	}
	n := uint64(len(res))
	if outSize < n {
		n = outSize
	}
	copy(h.memSlice(outOff, n), res[:n])
	return true, false
}

// descWord decodes a 32-byte descriptor word that must fit in a uint64.
func descWord(b []byte) (uint64, bool) {
	for _, c := range b[:24] {
		if c != 0 {
			return 0, false
		}
	}
	var v uint64
	for _, c := range b[24:] {
		v = v<<8 | uint64(c)
	}
	return v, true
}
