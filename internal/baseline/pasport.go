package baseline

import (
	"errors"
	"fmt"
	"time"

	"agnopol/internal/geo"
	"agnopol/internal/polcrypto"
)

// PASPORT (Nosouhi et al., IEEE TCSS 2020; §1.7.2): a private location-
// proof scheme whose distinguishing mechanism is that the VERIFIER assigns
// the witness to the prover, so a prover cannot shop for a colluding
// witness — the design the thesis says inspired its witness-list delivery.
// Its residual weakness, which the thesis also records, is the verifier
// itself: "the verifier could not act in 'good-faith' and misbehave". Both
// sides are reproduced here and exercised by tests.

// PasportUser is a prover or witness.
type PasportUser struct {
	Name   string
	Key    *polcrypto.KeyPair
	Device *geo.Device
}

// NewPasportUser creates a user.
func NewPasportUser(name string, at geo.LatLng, rand interface{ Read([]byte) (int, error) }) (*PasportUser, error) {
	kp, err := polcrypto.GenerateKeyPair(rand)
	if err != nil {
		return nil, err
	}
	return &PasportUser{Name: name, Key: kp, Device: geo.NewDevice(at)}, nil
}

// Assignment is the verifier's witness-assignment token: it names the
// prover, the assigned witness, and an expiry, signed by the verifier.
type Assignment struct {
	ProverPub  []byte
	WitnessPub []byte
	IssuedAt   time.Duration
	ExpiresAt  time.Duration
	Signature  []byte
}

func assignmentMessage(a *Assignment) []byte {
	h := polcrypto.Hash(a.ProverPub, a.WitnessPub,
		[]byte(a.IssuedAt.String()), []byte(a.ExpiresAt.String()))
	return h[:]
}

// PasportProof is the witness-countersigned certificate, bound to the
// assignment.
type PasportProof struct {
	Assignment Assignment
	Location   geo.LatLng
	Time       time.Duration
	WitnessSig []byte
}

func proofMessage(p *PasportProof) []byte {
	h := polcrypto.Hash(assignmentMessage(&p.Assignment),
		[]byte(p.Location.String()), []byte(p.Time.String()))
	return h[:]
}

// PasportVerifier both assigns witnesses and validates proofs — the
// concentration of power the thesis objects to.
type PasportVerifier struct {
	Key       *polcrypto.KeyPair
	witnesses []*PasportUser
}

// NewPasportVerifier creates the verifier with its registered witness pool.
func NewPasportVerifier(rand interface{ Read([]byte) (int, error) }, witnesses ...*PasportUser) (*PasportVerifier, error) {
	kp, err := polcrypto.GenerateKeyPair(rand)
	if err != nil {
		return nil, err
	}
	return &PasportVerifier{Key: kp, witnesses: witnesses}, nil
}

// PASPORT errors.
var (
	ErrNoWitnessNearby   = errors.New("baseline: no registered witness near the claimed area")
	ErrAssignmentExpired = errors.New("baseline: witness assignment expired")
	ErrWrongWitness      = errors.New("baseline: proof signed by a witness other than the assigned one")
)

// AssignWitness picks a registered witness near the prover's claimed
// location; the prover has no say in the choice (the anti-collusion
// mechanism).
func (v *PasportVerifier) AssignWitness(prover *PasportUser, now time.Duration) (Assignment, *PasportUser, error) {
	claimed := prover.Device.ClaimedPosition
	var best *PasportUser
	bestD := 1e18
	for _, w := range v.witnesses {
		d := geo.DistanceMeters(w.Device.TruePosition, claimed)
		if d < bestD {
			best, bestD = w, d
		}
	}
	if best == nil || bestD > 100 {
		return Assignment{}, nil, ErrNoWitnessNearby
	}
	a := Assignment{
		ProverPub:  prover.Key.Public,
		WitnessPub: best.Key.Public,
		IssuedAt:   now,
		ExpiresAt:  now + 2*time.Minute,
	}
	a.Signature = v.Key.Sign(assignmentMessage(&a))
	return a, best, nil
}

// WitnessCertify is the assigned witness's side: Bluetooth proximity check,
// then countersign.
func WitnessCertify(w *PasportUser, prover *PasportUser, a Assignment, now time.Duration) (PasportProof, error) {
	if string(a.WitnessPub) != string(w.Key.Public) {
		return PasportProof{}, ErrWrongWitness
	}
	if now > a.ExpiresAt {
		return PasportProof{}, ErrAssignmentExpired
	}
	if !w.Device.CanReach(prover.Device) {
		return PasportProof{}, fmt.Errorf("baseline: prover out of Bluetooth range (%0.f m)",
			geo.DistanceMeters(w.Device.TruePosition, prover.Device.TruePosition))
	}
	p := PasportProof{Assignment: a, Location: w.Device.TruePosition, Time: now}
	p.WitnessSig = w.Key.Sign(proofMessage(&p))
	return p, nil
}

// Validate checks a submitted proof: the assignment is the verifier's own,
// unexpired, and the countersignature opens under the assigned witness key.
func (v *PasportVerifier) Validate(p PasportProof, now time.Duration) error {
	if !polcrypto.Verify(v.Key.Public, assignmentMessage(&p.Assignment), p.Assignment.Signature) {
		return fmt.Errorf("baseline: assignment not issued by this verifier: %w", polcrypto.ErrBadSignature)
	}
	if p.Time > p.Assignment.ExpiresAt || now > p.Assignment.ExpiresAt+10*time.Minute {
		return ErrAssignmentExpired
	}
	if !polcrypto.Verify(p.Assignment.WitnessPub, proofMessage(&p), p.WitnessSig) {
		return fmt.Errorf("baseline: witness countersignature: %w", polcrypto.ErrBadSignature)
	}
	return nil
}

// ForgeProof is the misbehaving-verifier attack the thesis notes PASPORT
// cannot prevent: the verifier fabricates an assignment to a witness key it
// controls and "validates" its own forgery. It exists so the test suite can
// demonstrate the trust assumption, not for use.
func (v *PasportVerifier) ForgeProof(proverPub []byte, at geo.LatLng, now time.Duration,
	rand interface{ Read([]byte) (int, error) }) (PasportProof, error) {
	puppet, err := polcrypto.GenerateKeyPair(rand)
	if err != nil {
		return PasportProof{}, err
	}
	a := Assignment{
		ProverPub:  proverPub,
		WitnessPub: puppet.Public,
		IssuedAt:   now,
		ExpiresAt:  now + 2*time.Minute,
	}
	a.Signature = v.Key.Sign(assignmentMessage(&a))
	p := PasportProof{Assignment: a, Location: at, Time: now}
	p.WitnessSig = puppet.Sign(proofMessage(&p))
	return p, nil
}
