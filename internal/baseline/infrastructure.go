package baseline

import (
	"errors"
	"fmt"
	"time"

	"agnopol/internal/geo"
	"agnopol/internal/olc"
	"agnopol/internal/polcrypto"
)

// AccessPoint is the trusted fixed infrastructure of the
// infrastructure-dependent schemes (§1.7.1, Fig. 1.10): it certifies any
// device within Wi-Fi range. Trust is by fiat — there is no witness list or
// verification chain behind its signature.
type AccessPoint struct {
	ID       string
	Position geo.LatLng
	// RangeMeters is the Wi-Fi coverage radius (~50 m indoors).
	RangeMeters float64
	Key         *polcrypto.KeyPair
}

// NewAccessPoint installs an AP.
func NewAccessPoint(id string, at geo.LatLng, rangeMeters float64, rand interface{ Read([]byte) (int, error) }) (*AccessPoint, error) {
	kp, err := polcrypto.GenerateKeyPair(rand)
	if err != nil {
		return nil, err
	}
	return &AccessPoint{ID: id, Position: at, RangeMeters: rangeMeters, Key: kp}, nil
}

// APProof is the certificate an access point issues.
type APProof struct {
	APID      string
	Recipient string
	OLC       string
	IssuedAt  time.Duration
	Signature []byte
}

// ErrOutOfCoverage reports a device outside the AP's radio range.
var ErrOutOfCoverage = errors.New("baseline: device outside access-point coverage")

// Issue certifies a device currently in coverage. Like real Wi-Fi
// infrastructure, the AP sees the device's true radio position, so a
// spoofed GPS claim doesn't help the attacker here either — the limitation
// is cost, not security (§1.7.1).
func (ap *AccessPoint) Issue(dev *geo.Device, recipient string, now time.Duration) (APProof, error) {
	if geo.DistanceMeters(ap.Position, dev.TruePosition) > ap.RangeMeters {
		return APProof{}, fmt.Errorf("%w: %s", ErrOutOfCoverage, ap.ID)
	}
	code, err := olc.Encode(ap.Position.Lat, ap.Position.Lng, olc.DefaultCodeLength)
	if err != nil {
		return APProof{}, err
	}
	msg := []byte(ap.ID + "|" + recipient + "|" + code + "|" + now.String())
	return APProof{
		APID:      ap.ID,
		Recipient: recipient,
		OLC:       code,
		IssuedAt:  now,
		Signature: ap.Key.Sign(msg),
	}, nil
}

// VerifyAPProof checks the AP's signature.
func VerifyAPProof(ap *AccessPoint, p APProof) bool {
	msg := []byte(p.APID + "|" + p.Recipient + "|" + p.OLC + "|" + p.IssuedAt.String())
	return polcrypto.Verify(ap.Key.Public, msg, p.Signature)
}

// DeploymentCost models the economics the thesis uses to argue against
// infrastructure-dependent schemes: covering an area requires
// ceil(area/coverage) access points at a fixed hardware+install cost each,
// while the witness-based design needs none.
type DeploymentCost struct {
	AreaKm2          float64
	APRangeMeters    float64
	CostPerAPEuro    float64
	APsNeeded        int
	TotalCostEuro    float64
	WitnessBasedEuro float64 // always 0: no infrastructure
}

// EstimateDeploymentCost computes the AP count and cost to cover an area.
func EstimateDeploymentCost(areaKm2, apRangeMeters, costPerAPEuro float64) DeploymentCost {
	coverKm2 := 3.14159265 * apRangeMeters * apRangeMeters / 1e6
	n := int(areaKm2/coverKm2) + 1
	return DeploymentCost{
		AreaKm2:       areaKm2,
		APRangeMeters: apRangeMeters,
		CostPerAPEuro: costPerAPEuro,
		APsNeeded:     n,
		TotalCostEuro: float64(n) * costPerAPEuro,
	}
}
