package baseline

import (
	"errors"
	"testing"
	"time"

	"agnopol/internal/chain"
	"agnopol/internal/geo"
)

func pasportFixture(t *testing.T) (*PasportVerifier, *PasportUser, *PasportUser, *chain.Rand) {
	t.Helper()
	rng := chain.NewRand(20)
	prover, err := NewPasportUser("prover", piazza, rng)
	if err != nil {
		t.Fatal(err)
	}
	witness, err := NewPasportUser("witness", geo.Offset(piazza, 3, 3), rng)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewPasportVerifier(rng, witness)
	if err != nil {
		t.Fatal(err)
	}
	return v, prover, witness, rng
}

func TestPasportHonestFlow(t *testing.T) {
	v, prover, witness, _ := pasportFixture(t)
	a, assigned, err := v.AssignWitness(prover, 0)
	if err != nil {
		t.Fatal(err)
	}
	if assigned != witness {
		t.Fatal("wrong witness assigned")
	}
	proof, err := WitnessCertify(witness, prover, a, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(proof, 2*time.Second); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
}

func TestPasportProverCannotPickWitness(t *testing.T) {
	v, prover, _, rng := pasportFixture(t)
	// The prover's accomplice is NOT the assigned witness; its
	// countersignature must not validate.
	accomplice, err := NewPasportUser("accomplice", piazza, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := v.AssignWitness(prover, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WitnessCertify(accomplice, prover, a, time.Second); !errors.Is(err, ErrWrongWitness) {
		t.Fatalf("accomplice certify err = %v, want ErrWrongWitness", err)
	}
	// Even forging the proof struct directly fails validation.
	forged := PasportProof{Assignment: a, Location: piazza, Time: time.Second}
	forged.WitnessSig = accomplice.Key.Sign(proofMessage(&forged))
	if err := v.Validate(forged, 2*time.Second); err == nil {
		t.Fatal("proof countersigned by a non-assigned witness validated")
	}
}

func TestPasportExpiryAndRange(t *testing.T) {
	v, prover, witness, _ := pasportFixture(t)
	a, _, err := v.AssignWitness(prover, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WitnessCertify(witness, prover, a, 3*time.Minute); !errors.Is(err, ErrAssignmentExpired) {
		t.Fatalf("expired assignment err = %v", err)
	}
	// Remote prover: Bluetooth gate.
	prover.Device.MoveTo(geo.Offset(piazza, 500, 0))
	if _, err := WitnessCertify(witness, prover, a, time.Second); err == nil {
		t.Fatal("out-of-range prover certified")
	}
}

func TestPasportNoWitnessNearby(t *testing.T) {
	rng := chain.NewRand(21)
	prover, err := NewPasportUser("p", piazza, rng)
	if err != nil {
		t.Fatal(err)
	}
	far, err := NewPasportUser("w", geo.Offset(piazza, 5000, 0), rng)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewPasportVerifier(rng, far)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.AssignWitness(prover, 0); !errors.Is(err, ErrNoWitnessNearby) {
		t.Fatalf("err = %v, want ErrNoWitnessNearby", err)
	}
}

// TestPasportVerifierMisbehaves documents the trust assumption the thesis
// flags: "the verifier could not act in 'good-faith' and misbehave" — a
// malicious verifier can fabricate proofs that pass its own validation.
// The thesis architecture bounds this differently: verifiers are CA-
// designated and the witness list is public, so a forged witness signature
// is detectable by anyone re-running the check.
func TestPasportVerifierMisbehaves(t *testing.T) {
	v, prover, _, rng := pasportFixture(t)
	forged, err := v.ForgeProof(prover.Key.Public, geo.LatLng{Lat: 45.4642, Lng: 9.19}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(forged, time.Second); err != nil {
		t.Fatalf("expected the forgery to validate under the malicious verifier: %v", err)
	}
	// An independent verifier (different key) rejects the same proof.
	other, err := NewPasportVerifier(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Validate(forged, time.Second); err == nil {
		t.Fatal("independent verifier accepted the forgery")
	}
}
