package baseline

import (
	"errors"
	"testing"

	"agnopol/internal/chain"
	"agnopol/internal/geo"
)

var piazza = geo.LatLng{Lat: 44.4938, Lng: 11.3387}

func TestAPPLAUSProofGenerationAndVerification(t *testing.T) {
	rng := chain.NewRand(1)
	ca := NewCentralAuthority()
	server := NewAPPLAUSServer()
	prover, err := NewAPPLAUSUser("alice", piazza, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	witness, err := NewAPPLAUSUser("bob", geo.Offset(piazza, 3, 3), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	ca.RegisterUser(prover)
	ca.RegisterUser(witness)

	proof, err := GenerateProof(prover, witness, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(proof); err != nil {
		t.Fatal(err)
	}
	v := &APPLAUSVerifier{CA: ca, Server: server}
	ok, err := v.VerifyVisit("alice", piazza, 50)
	if err != nil || !ok {
		t.Fatalf("honest visit rejected: ok=%v err=%v", ok, err)
	}
	// Wrong place.
	ok, err = v.VerifyVisit("alice", geo.Offset(piazza, 5000, 0), 50)
	if err != nil || ok {
		t.Fatal("visit verified at a place never visited")
	}
	// Unknown identity.
	ok, err = v.VerifyVisit("carol", piazza, 50)
	if err != nil || ok {
		t.Fatal("unknown identity verified")
	}
}

func TestAPPLAUSRequiresProximity(t *testing.T) {
	rng := chain.NewRand(2)
	prover, err := NewAPPLAUSUser("alice", piazza, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	far, err := NewAPPLAUSUser("bob", geo.Offset(piazza, 500, 0), 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateProof(prover, far, 0); err == nil {
		t.Fatal("proof generated across 500 m")
	}
}

func TestAPPLAUSPseudonymRotationPreservesVerification(t *testing.T) {
	rng := chain.NewRand(3)
	ca := NewCentralAuthority()
	server := NewAPPLAUSServer()
	prover, err := NewAPPLAUSUser("alice", piazza, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	witness, err := NewAPPLAUSUser("bob", piazza, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ca.RegisterUser(prover)
	ca.RegisterUser(witness)
	// Proofs under two different pseudonyms.
	p1, err := GenerateProof(prover, witness, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(p1); err != nil {
		t.Fatal(err)
	}
	prover.RotatePseudonym()
	witness.RotatePseudonym()
	p2, err := GenerateProof(prover, witness, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(p2); err != nil {
		t.Fatal(err)
	}
	if p1.ProverPseudonym == p2.ProverPseudonym {
		t.Fatal("pseudonym did not rotate")
	}
	// The CA's mapping still links both to "alice" (the privacy/oversight
	// trade-off of the centralized design).
	v := &APPLAUSVerifier{CA: ca, Server: server}
	ok, err := v.VerifyVisit("alice", piazza, 50)
	if err != nil || !ok {
		t.Fatal("verification across rotated pseudonyms failed")
	}
}

func TestAPPLAUSSinglePointOfFailure(t *testing.T) {
	rng := chain.NewRand(4)
	ca := NewCentralAuthority()
	server := NewAPPLAUSServer()
	prover, err := NewAPPLAUSUser("alice", piazza, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	witness, err := NewAPPLAUSUser("bob", piazza, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	ca.RegisterUser(prover)
	ca.RegisterUser(witness)
	proof, err := GenerateProof(prover, witness, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Upload(proof); err != nil {
		t.Fatal(err)
	}
	server.SetDown(true)
	v := &APPLAUSVerifier{CA: ca, Server: server}
	if _, err := v.VerifyVisit("alice", piazza, 50); !errors.Is(err, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown — the single point of failure", err)
	}
	if err := server.Upload(proof); !errors.Is(err, ErrServerDown) {
		t.Fatal("upload succeeded while server down")
	}
}

func TestAccessPointIssueAndVerify(t *testing.T) {
	rng := chain.NewRand(5)
	ap, err := NewAccessPoint("ap-1", piazza, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	dev := geo.NewDevice(geo.Offset(piazza, 10, 10))
	proof, err := ap.Issue(dev, "alice", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyAPProof(ap, proof) {
		t.Fatal("honest AP proof rejected")
	}
	proof.Recipient = "mallory"
	if VerifyAPProof(ap, proof) {
		t.Fatal("transferred AP proof accepted (non-transferability)")
	}
}

func TestAccessPointCoverage(t *testing.T) {
	rng := chain.NewRand(6)
	ap, err := NewAccessPoint("ap-1", piazza, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	far := geo.NewDevice(geo.Offset(piazza, 100, 0))
	if _, err := ap.Issue(far, "alice", 0); !errors.Is(err, ErrOutOfCoverage) {
		t.Fatalf("err = %v, want out of coverage", err)
	}
	// GPS spoofing doesn't help: coverage uses the true position.
	far.Spoof(piazza)
	if _, err := ap.Issue(far, "alice", 0); !errors.Is(err, ErrOutOfCoverage) {
		t.Fatal("spoofed device served by AP")
	}
}

func TestDeploymentCostModel(t *testing.T) {
	// Covering 10 km² with 50 m APs at €200 each.
	c := EstimateDeploymentCost(10, 50, 200)
	if c.APsNeeded < 1000 {
		t.Fatalf("APs needed %d, want >1000 (10 km² / ~0.008 km² per AP)", c.APsNeeded)
	}
	if c.TotalCostEuro != float64(c.APsNeeded)*200 {
		t.Fatal("cost arithmetic wrong")
	}
	if c.WitnessBasedEuro != 0 {
		t.Fatal("witness-based cost must be zero (no infrastructure)")
	}
}

func TestBrambillaHonestFlow(t *testing.T) {
	rng := chain.NewRand(7)
	alice, err := NewP2PPeer("alice", piazza, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewP2PPeer("bob", geo.Offset(piazza, 3, 3), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := NewP2PChain([]*P2PPeer{alice, bob}, 7)
	req := alice.NewRequest(c.Head().Hash, 5)
	resp := bob.Respond(req, 6)
	if err := c.Submit(resp); err != nil {
		t.Fatal(err)
	}
	blk := c.Forge()
	if len(blk.Proofs) != 1 {
		t.Fatalf("block holds %d proofs", len(blk.Proofs))
	}
	if !c.HasProofFor(alice.Key.Public, piazza, 50) {
		t.Fatal("persisted proof not found")
	}
}

func TestBrambillaRejectsForgeryAndDuplicates(t *testing.T) {
	rng := chain.NewRand(8)
	alice, err := NewP2PPeer("alice", piazza, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewP2PPeer("bob", piazza, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := NewP2PChain([]*P2PPeer{alice, bob}, 8)
	req := alice.NewRequest(c.Head().Hash, 1)
	resp := bob.Respond(req, 2)

	tampered := resp
	tampered.WitnessLoc = geo.Offset(piazza, 999, 0)
	if err := c.Submit(tampered); err == nil {
		t.Fatal("tampered response accepted")
	}

	if err := c.Submit(resp); err != nil {
		t.Fatal(err)
	}
	// Re-broadcasting the same proof is rejected (§1.7.2's duplicate
	// check).
	if err := c.Submit(resp); err == nil {
		t.Fatal("duplicate proof accepted")
	}

	// Requests must anchor to the chain head.
	stale := alice.NewRequest([32]byte{1, 2, 3}, 3)
	if err := c.Submit(bob.Respond(stale, 4)); err == nil {
		t.Fatal("unanchored request accepted")
	}
}

// TestBrambillaCollusionVulnerability documents the protocol flaw the
// thesis inherits from the related work: two colluding peers at different
// locations CAN mint a valid proof, because nothing binds the exchange to a
// physical channel. The thesis design closes this with the witness's
// Bluetooth-range check (see core's spoofing tests).
func TestBrambillaCollusionVulnerability(t *testing.T) {
	rng := chain.NewRand(9)
	mallory, err := NewP2PPeer("mallory", geo.Offset(piazza, 5000, 0), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	mallory.Device.Spoof(piazza)
	accomplice, err := NewP2PPeer("accomplice", piazza, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := NewP2PChain([]*P2PPeer{mallory, accomplice}, 9)
	req := mallory.NewRequest(c.Head().Hash, 1)
	resp := accomplice.Respond(req, 2)
	if err := c.Submit(resp); err != nil {
		t.Fatalf("collusion submission failed: %v", err)
	}
	c.Forge()
	if !c.HasProofFor(mallory.Key.Public, piazza, 50) {
		t.Fatal("expected the collusion to succeed — that is the documented vulnerability")
	}
}

func TestBrambillaStakeWeightedForging(t *testing.T) {
	rng := chain.NewRand(10)
	whale, err := NewP2PPeer("whale", piazza, 900, rng)
	if err != nil {
		t.Fatal(err)
	}
	minnow, err := NewP2PPeer("minnow", piazza, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := NewP2PChain([]*P2PPeer{whale, minnow}, 10)
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		counts[c.Forge().Forger]++
	}
	if counts["whale"] < counts["minnow"] {
		t.Fatalf("stake weighting inverted: %v", counts)
	}
}
