package baseline

import (
	"errors"
	"fmt"
	"time"

	"agnopol/internal/geo"
	"agnopol/internal/polcrypto"
)

// Brambilla et al.'s blockchain-based proof of location (§1.7.2,
// Figs. 1.14–1.16): peers exchange request/response pairs directly, collect
// valid unacknowledged proofs into blocks, and append them by proof-of-
// stake consensus. The protocol's documented weakness — provers communicate
// directly, so two colluding remote peers can mint a proof without physical
// proximity — is reproduced here and contrasted, in tests, with the
// thesis design where the witness checks Bluetooth reachability.

// P2PPeer is a participant of the Brambilla network.
type P2PPeer struct {
	Name   string
	Key    *polcrypto.KeyPair
	Device *geo.Device
	Stake  uint64
}

// NewP2PPeer creates a peer.
func NewP2PPeer(name string, at geo.LatLng, stake uint64, rand interface{ Read([]byte) (int, error) }) (*P2PPeer, error) {
	kp, err := polcrypto.GenerateKeyPair(rand)
	if err != nil {
		return nil, err
	}
	return &P2PPeer{Name: name, Key: kp, Device: geo.NewDevice(at), Stake: stake}, nil
}

// PoLRequest mirrors Fig. 1.16a: the prover's key, claimed coordinates,
// previous block hash and timestamp, signed by the prover.
type PoLRequest struct {
	ProverPub []byte
	Claimed   geo.LatLng
	PrevBlock [32]byte
	Time      time.Duration
	Signature []byte
}

// PoLResponse mirrors Fig. 1.16b: the witness countersigns the request with
// its own key and coordinates.
type PoLResponse struct {
	Request    PoLRequest
	WitnessPub []byte
	WitnessLoc geo.LatLng
	Time       time.Duration
	Signature  []byte
}

func requestMessage(r *PoLRequest) []byte {
	h := polcrypto.Hash(r.ProverPub, []byte(r.Claimed.String()), r.PrevBlock[:], []byte(r.Time.String()))
	return h[:]
}

func responseMessage(r *PoLResponse) []byte {
	h := polcrypto.Hash(requestMessage(&r.Request), r.WitnessPub, []byte(r.WitnessLoc.String()), []byte(r.Time.String()))
	return h[:]
}

// NewRequest builds and signs a proof-of-location request.
func (p *P2PPeer) NewRequest(prevBlock [32]byte, now time.Duration) PoLRequest {
	r := PoLRequest{
		ProverPub: p.Key.Public,
		Claimed:   p.Device.ClaimedPosition,
		PrevBlock: prevBlock,
		Time:      now,
	}
	r.Signature = p.Key.Sign(requestMessage(&r))
	return r
}

// Respond countersigns a request. THE PROTOCOL FLAW: this runs over any
// direct channel, so nothing forces the responder to be physically near the
// requester — two colluding peers at different locations can complete it.
func (p *P2PPeer) Respond(req PoLRequest, now time.Duration) PoLResponse {
	resp := PoLResponse{
		Request:    req,
		WitnessPub: p.Key.Public,
		WitnessLoc: p.Device.ClaimedPosition,
		Time:       now,
	}
	resp.Signature = p.Key.Sign(responseMessage(&resp))
	return resp
}

// P2PBlock collects acknowledged proofs.
type P2PBlock struct {
	Number    uint64
	Prev      [32]byte
	Hash      [32]byte
	Proofs    []PoLResponse
	Forger    string
	Signature []byte
}

// P2PChain is the proof-of-location blockchain with a simple proof-of-stake
// forger selection ("a pseudo-random to decide who will add the next
// block", §1.7.2 footnote).
type P2PChain struct {
	peers   []*P2PPeer
	blocks  []*P2PBlock
	pending []PoLResponse
	rng     *randSource
	seen    map[[32]byte]bool
}

type randSource struct{ state uint64 }

func (r *randSource) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 27)
}

// NewP2PChain starts a chain with the given peers.
func NewP2PChain(peers []*P2PPeer, seed uint64) *P2PChain {
	genesis := &P2PBlock{Number: 0}
	genesis.Hash = polcrypto.Hash([]byte("brambilla-genesis"))
	return &P2PChain{
		peers:  peers,
		blocks: []*P2PBlock{genesis},
		rng:    &randSource{state: seed},
		seen:   make(map[[32]byte]bool),
	}
}

// Head returns the latest block.
func (c *P2PChain) Head() *P2PBlock { return c.blocks[len(c.blocks)-1] }

// Submit validates a response and queues it for the next block. Validation
// checks both signatures, the chain linkage, and — crucially — cannot check
// physical proximity because the protocol has no channel binding.
func (c *P2PChain) Submit(resp PoLResponse) error {
	if !polcrypto.Verify(resp.Request.ProverPub, requestMessage(&resp.Request), resp.Request.Signature) {
		return fmt.Errorf("baseline: prover signature: %w", polcrypto.ErrBadSignature)
	}
	if !polcrypto.Verify(resp.WitnessPub, responseMessage(&resp), resp.Signature) {
		return fmt.Errorf("baseline: witness signature: %w", polcrypto.ErrBadSignature)
	}
	if resp.Request.PrevBlock != c.Head().Hash {
		return errors.New("baseline: request not anchored to the chain head")
	}
	// Reject duplicates already persisted in earlier blocks (§1.7.2:
	// "verifying that the proof-of-location inserted in a new block is not
	// already present in previous blocks").
	key := polcrypto.Hash(responseMessage(&resp))
	if c.seen[key] {
		return errors.New("baseline: duplicate proof of location")
	}
	c.seen[key] = true
	c.pending = append(c.pending, resp)
	return nil
}

// Forge selects a stake-weighted pseudo-random forger and appends the
// pending proofs as a block.
func (c *P2PChain) Forge() *P2PBlock {
	total := uint64(0)
	for _, p := range c.peers {
		total += p.Stake
	}
	target := c.rng.next() % total
	var forger *P2PPeer
	acc := uint64(0)
	for _, p := range c.peers {
		acc += p.Stake
		if target < acc {
			forger = p
			break
		}
	}
	blk := &P2PBlock{
		Number: uint64(len(c.blocks)),
		Prev:   c.Head().Hash,
		Proofs: c.pending,
		Forger: forger.Name,
	}
	var buf []byte
	buf = append(buf, blk.Prev[:]...)
	for _, p := range blk.Proofs {
		buf = append(buf, responseMessage(&p)...)
	}
	blk.Hash = polcrypto.Hash(buf)
	blk.Signature = forger.Key.Sign(blk.Hash[:])
	c.pending = nil
	c.blocks = append(c.blocks, blk)
	return blk
}

// HasProofFor reports whether the chain holds a persisted proof placing the
// prover's key at (approximately) the claimed location.
func (c *P2PChain) HasProofFor(proverPub []byte, at geo.LatLng, radiusMeters float64) bool {
	for _, blk := range c.blocks {
		for _, p := range blk.Proofs {
			if string(p.Request.ProverPub) == string(proverPub) &&
				geo.DistanceMeters(p.Request.Claimed, at) <= radiusMeters {
				return true
			}
		}
	}
	return false
}
