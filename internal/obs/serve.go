package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server exposes a Telemetry session over HTTP, stdlib only:
//
//	GET /metrics      live Prometheus text exposition
//	GET /timeseries   sampled per-series history with deltas/rates (JSON)
//	GET /trace        chrome://tracing span export of the ring buffer
//	GET /health       SLO verdict — 200 while healthy, 503 once breached
//	GET /debug/pprof  the usual runtime profiles
//	POST /quitquitquit release a -servehold early (scripted smoke tests)
//
// Every handler reads live state, so scraping mid-run shows the soak as
// it evolves rather than after the fact.
type Server struct {
	ln  net.Listener
	srv *http.Server
	tel *Telemetry

	quitOnce sync.Once
	quit     chan struct{}
}

// Serve binds addr (host:port; :0 picks a free port) and starts serving
// t in a background goroutine.
func Serve(addr string, t *Telemetry) (*Server, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: Serve needs a non-nil Telemetry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	s := &Server{ln: ln, tel: t, quit: make(chan struct{})}
	s.srv = &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with :0).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// QuitRequested is closed when a POST /quitquitquit arrives — the hook
// -servehold waits on.
func (s *Server) QuitRequested() <-chan struct{} {
	if s == nil {
		return nil
	}
	return s.quit
}

// Close stops the server immediately.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/timeseries", s.handleTimeseries)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/quitquitquit", s.handleQuit)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Flush the incremental opcode profiles first so per-opcode counters
	// are as live as everything else (Export never double-counts).
	s.tel.Obs.ExportProfiles()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var reg *Registry
	if s.tel.Obs != nil {
		reg = s.tel.Obs.Registry
	}
	_ = reg.WriteText(w)
}

func (s *Server) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.tel.Sampler.WriteJSON(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var tr *Tracer
	if s.tel.Obs != nil {
		tr = s.tel.Obs.Tracer
	}
	_ = tr.WriteChromeTrace(w)
}

// healthJSON is the compact /health body; the full flight-recorder
// bundle ships in HEALTH_report.json, not over the scrape path.
type healthJSON struct {
	Healthy       bool         `json:"healthy"`
	Samples       uint64       `json:"samples"`
	TotalBreaches uint64       `json:"total_breaches"`
	Rules         []Evaluation `json:"rules"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rep := s.tel.Health.Report()
	w.Header().Set("Content-Type", "application/json")
	if !rep.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(healthJSON{
		Healthy:       rep.Healthy,
		Samples:       rep.Samples,
		TotalBreaches: rep.TotalBreaches,
		Rules:         rep.Rules,
	})
}

func (s *Server) handleQuit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.quitOnce.Do(func() { close(s.quit) })
	fmt.Fprintln(w, "bye")
}
