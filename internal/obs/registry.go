package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bucket upper bounds (seconds),
// the Prometheus defaults: wall-clock scale from 5 ms to 10 s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExponentialBuckets returns count upper bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		// math.Pow instead of repeated multiplication: 1e-6·10·10 drifts
		// to 9.999999999999999e-05 and pollutes the le labels.
		out[i] = start * math.Pow(factor, float64(i))
	}
	return out
}

// LinearBuckets returns count upper bounds starting at start, spaced by
// width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a float64 metric that can go up and down. A nil *Gauge is a
// no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(floatBits(v))
	}
}

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Histogram is a fixed-bucket distribution metric. Observations are
// counted into the first bucket whose upper bound is >= the value
// (Prometheus `le` semantics), plus a running sum and count. A nil
// *Histogram is a no-op.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s returns the first i with bounds[i] >= v, which is
	// exactly the inclusive-upper-bound bucket; v beyond every bound
	// lands in the +Inf overflow slot.
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, +Inf implicit
	Counts []uint64  // per-bucket (non-cumulative), len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// series is one registered metric: a name, a rendered label string and
// the instrument behind it.
type series struct {
	name   string
	labels string // `k="v",k2="v2"` with keys sorted, "" when unlabeled
	kind   string // "counter" | "gauge" | "histogram" | "summary"
}

func (s series) id() string {
	if s.labels == "" {
		return s.name
	}
	return s.name + "{" + s.labels + "}"
}

// labelEscaper implements the Prometheus text-format escaping for label
// values: backslash, double-quote and newline only. Go's %q is not a
// substitute — it escapes non-printables as \x.. / \u.... sequences the
// exposition format does not define, and mangles valid UTF-8.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper implements the escaping for HELP text: backslash and
// newline (quotes are legal there).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// EscapeLabelValue renders a label value for the Prometheus text
// exposition format, shared by WriteText and the /metrics HTTP handler.
func EscapeLabelValue(v string) string { return labelEscaper.Replace(v) }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	parts := make([]string, len(sorted))
	for i, l := range sorted {
		parts[i] = l.Key + `="` + EscapeLabelValue(l.Value) + `"`
	}
	return strings.Join(parts, ",")
}

// Registry holds named metrics. All methods are safe for concurrent use;
// a nil *Registry hands out nil (no-op) instruments.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	sketches   map[string]*QuantileSketch
	info       map[string]series // id -> name/labels, shared across kinds
	help       map[string]string // family name -> HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		sketches:   make(map[string]*QuantileSketch),
		info:       make(map[string]series),
		help:       make(map[string]string),
	}
}

// Help sets the `# HELP` text emitted for a metric family. A nil registry
// ignores the call.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// Counter returns (creating on first use) the counter with the given
// name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := series{name: name, labels: renderLabels(labels), kind: "counter"}
	id := s.id()
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{}
		r.counters[id] = c
		r.info[id] = s
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := series{name: name, labels: renderLabels(labels), kind: "gauge"}
	id := s.id()
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{}
		r.gauges[id] = g
		r.info[id] = s
	}
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket upper bounds and labels. A nil buckets slice selects
// DefBuckets; buckets are fixed at creation and ignored on later calls.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := series{name: name, labels: renderLabels(labels), kind: "histogram"}
	id := s.id()
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[id]
	if !ok {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		r.histograms[id] = h
		r.info[id] = s
	}
	return h
}

// Sketch returns (creating on first use) the quantile sketch with the
// given name and labels. Sketches render as Prometheus summaries (one
// line per SketchQuantiles entry plus _sum and _count).
func (r *Registry) Sketch(name string, labels ...Label) *QuantileSketch {
	if r == nil {
		return nil
	}
	s := series{name: name, labels: renderLabels(labels), kind: "summary"}
	id := s.id()
	r.mu.Lock()
	defer r.mu.Unlock()
	sk, ok := r.sketches[id]
	if !ok {
		sk = NewQuantileSketch()
		r.sketches[id] = sk
		r.info[id] = s
	}
	return sk
}

// MergedSketch merges every registered sketch of the given family (the
// metric name, label sets ignored) into one queryable snapshot — the
// cross-shard / cross-chain view of a latency distribution. The second
// return is false when the family has no sketches.
func (r *Registry) MergedSketch(family string) (SketchSnapshot, bool) {
	if r == nil {
		return SketchSnapshot{}, false
	}
	r.mu.Lock()
	parts := make([]*QuantileSketch, 0, 4)
	for id, sk := range r.sketches {
		if familyOf(id) == family {
			parts = append(parts, sk)
		}
	}
	r.mu.Unlock()
	if len(parts) == 0 {
		return SketchSnapshot{}, false
	}
	merged := NewQuantileSketch()
	for _, sk := range parts {
		// Same package-default layout everywhere; a mismatch is impossible
		// for registry-created sketches.
		_ = merged.Merge(sk)
	}
	return merged.Snapshot(), true
}

// familyOf strips the label set from a series id: `name{labels}` -> name.
func familyOf(id string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i]
	}
	return id
}

// Snapshot captures every metric's current value, keyed by series id
// (`name{labels}`).
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	Sketches   map[string]SketchSnapshot
}

// Snapshot reads all metrics at once.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
		Sketches:   make(map[string]SketchSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for id, c := range r.counters {
		counters[id] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for id, g := range r.gauges {
		gauges[id] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for id, h := range r.histograms {
		hists[id] = h
	}
	sketches := make(map[string]*QuantileSketch, len(r.sketches))
	for id, sk := range r.sketches {
		sketches[id] = sk
	}
	r.mu.Unlock()
	for id, c := range counters {
		s.Counters[id] = c.Value()
	}
	for id, g := range gauges {
		s.Gauges[id] = g.Value()
	}
	for id, h := range hists {
		s.Histograms[id] = h.Snapshot()
	}
	for id, sk := range sketches {
		s.Sketches[id] = sk.Snapshot()
	}
	return s
}

// Diff returns the change from earlier to s: counter and histogram/sketch
// counts and sums are subtracted; gauges keep their latest value. Series
// churn is handled conservatively: a series absent from the earlier
// snapshot counts from zero, a series absent from the later snapshot is
// dropped (it no longer exists to report on), and a series whose
// cumulative state went backwards — a registry swap or a histogram whose
// bucket layout drifted — is treated as freshly started rather than
// underflowing uint64 arithmetic into garbage deltas.
func (s *Snapshot) Diff(earlier *Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		Sketches:   make(map[string]SketchSnapshot, len(s.Sketches)),
	}
	for id, v := range s.Counters {
		prev := uint64(0)
		if earlier != nil {
			prev = earlier.Counters[id]
		}
		if prev > v {
			// Counter went backwards: the instrument restarted. Count from
			// zero, Prometheus rate() style, instead of wrapping.
			prev = 0
		}
		out.Counters[id] = v - prev
	}
	for id, v := range s.Gauges {
		out.Gauges[id] = v
	}
	for id, h := range s.Histograms {
		d := HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]uint64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
		if earlier != nil {
			if prev, ok := earlier.Histograms[id]; ok && subtractableHistogram(prev, h) {
				for i := range d.Counts {
					d.Counts[i] -= prev.Counts[i]
				}
				d.Sum -= prev.Sum
				d.Count -= prev.Count
			}
		}
		out.Histograms[id] = d
	}
	for id, sk := range s.Sketches {
		d := SketchSnapshot{
			Gamma: sk.Gamma, MinIndex: sk.MinIndex,
			Counts: append([]uint64(nil), sk.Counts...),
			Count:  sk.Count, SumNanos: sk.SumNanos,
			// Min/Max are not diffable; keep the cumulative extremes.
			Min: sk.Min, Max: sk.Max,
		}
		if earlier != nil {
			if prev, ok := earlier.Sketches[id]; ok && subtractableSketch(prev, sk) {
				for i := range d.Counts {
					d.Counts[i] -= prev.Counts[i]
				}
				d.Count -= prev.Count
				d.SumNanos -= prev.SumNanos
			}
		}
		out.Sketches[id] = d
	}
	return out
}

// subtractableHistogram reports whether prev can be subtracted from cur:
// identical bucket layout (bounds, not just length — a same-length layout
// drift would silently misattribute counts) and monotonic counts.
func subtractableHistogram(prev, cur HistogramSnapshot) bool {
	if len(prev.Bounds) != len(cur.Bounds) || len(prev.Counts) != len(cur.Counts) {
		return false
	}
	for i := range prev.Bounds {
		if prev.Bounds[i] != cur.Bounds[i] {
			return false
		}
	}
	if prev.Count > cur.Count {
		return false
	}
	for i := range prev.Counts {
		if prev.Counts[i] > cur.Counts[i] {
			return false
		}
	}
	return true
}

// subtractableSketch is the sketch analogue of subtractableHistogram.
func subtractableSketch(prev, cur SketchSnapshot) bool {
	if prev.Gamma != cur.Gamma || prev.MinIndex != cur.MinIndex ||
		len(prev.Counts) != len(cur.Counts) ||
		prev.Count > cur.Count || prev.SumNanos > cur.SumNanos {
		return false
	}
	for i := range prev.Counts {
		if prev.Counts[i] > cur.Counts[i] {
			return false
		}
	}
	return true
}

// WriteText renders the registry in the Prometheus text exposition
// format, sorted by metric name then label set, with one `# TYPE` line
// per family.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	r.mu.Lock()
	info := make(map[string]series, len(r.info))
	for id, s := range r.info {
		info[id] = s
	}
	help := make(map[string]string, len(r.help))
	for name, text := range r.help {
		help[name] = text
	}
	r.mu.Unlock()

	type line struct {
		name   string
		labels string
		kind   string
		id     string
	}
	lines := make([]line, 0, len(info))
	for id, s := range info {
		lines = append(lines, line{name: s.name, labels: s.labels, kind: s.kind, id: id})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].name != lines[j].name {
			return lines[i].name < lines[j].name
		}
		return lines[i].labels < lines[j].labels
	})

	lastFamily := ""
	for _, ln := range lines {
		if ln.name != lastFamily {
			if text, ok := help[ln.name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", ln.name, helpEscaper.Replace(text)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ln.name, ln.kind); err != nil {
				return err
			}
			lastFamily = ln.name
		}
		switch ln.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %d\n", ln.id, snap.Counters[ln.id]); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %s\n", ln.id, formatFloat(snap.Gauges[ln.id])); err != nil {
				return err
			}
		case "histogram":
			if err := writeHistogramText(w, ln.name, ln.labels, snap.Histograms[ln.id]); err != nil {
				return err
			}
		case "summary":
			if err := writeSummaryText(w, ln.name, ln.labels, snap.Sketches[ln.id]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSummaryText renders one quantile sketch as a Prometheus summary:
// one line per SketchQuantiles entry plus _sum and _count.
func writeSummaryText(w io.Writer, name, labels string, s SketchSnapshot) error {
	for _, q := range SketchQuantiles {
		v := s.Quantile(q)
		if s.Count == 0 {
			v = math.NaN()
		}
		if _, err := fmt.Fprintf(w, "%s{%s} %s\n", name,
			joinLabels(labels, `quantile="`+quantileLabel(q)+`"`), formatFloat(v)); err != nil {
			return err
		}
	}
	sum := series{name: name + "_sum", labels: labels}
	count := series{name: name + "_count", labels: labels}
	if _, err := fmt.Fprintf(w, "%s %s\n", sum.id(), formatFloat(s.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", count.id(), s.Count)
	return err
}

func writeHistogramText(w io.Writer, name, labels string, h HistogramSnapshot) error {
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, joinLabels(labels, `le="`+formatFloat(b)+`"`), cum); err != nil {
			return err
		}
	}
	if len(h.Counts) > 0 {
		cum += h.Counts[len(h.Counts)-1]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, joinLabels(labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	sum := series{name: name + "_sum", labels: labels}
	count := series{name: name + "_count", labels: labels}
	if _, err := fmt.Fprintf(w, "%s %s\n", sum.id(), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", count.id(), h.Count)
	return err
}

func joinLabels(labels, le string) string {
	if labels == "" {
		return le
	}
	return labels + "," + le
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Text renders WriteText into a string.
func (r *Registry) Text() string {
	var sb strings.Builder
	_ = r.WriteText(&sb)
	return sb.String()
}
