package obs

import "sync"

// Profiler is the VM-level profiling hook: the EVM and AVM interpreters
// call Op once per executed opcode with its mnemonic and the gas (or
// budget) it consumed. Implementations must be cheap — the hook sits on
// the interpreter hot path behind a single nil check.
type Profiler interface {
	Op(name string, cost uint64)
}

// OpStat is the per-opcode accumulation.
type OpStat struct {
	Count uint64
	Cost  uint64
}

// OpcodeProfile is a concurrency-safe Profiler accumulating per-opcode
// execution counts and cost attribution. A nil *OpcodeProfile is a
// no-op Profiler.
type OpcodeProfile struct {
	mu       sync.Mutex
	ops      map[string]*OpStat
	exported map[string]OpStat
}

// NewOpcodeProfile returns an empty profile.
func NewOpcodeProfile() *OpcodeProfile {
	return &OpcodeProfile{
		ops:      make(map[string]*OpStat),
		exported: make(map[string]OpStat),
	}
}

// Op implements Profiler.
func (p *OpcodeProfile) Op(name string, cost uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	st, ok := p.ops[name]
	if !ok {
		st = &OpStat{}
		p.ops[name] = st
	}
	st.Count++
	st.Cost += cost
	p.mu.Unlock()
}

// Snapshot copies the per-opcode stats.
func (p *OpcodeProfile) Snapshot() map[string]OpStat {
	out := make(map[string]OpStat)
	if p == nil {
		return out
	}
	p.mu.Lock()
	for name, st := range p.ops {
		out[name] = *st
	}
	p.mu.Unlock()
	return out
}

// Export flushes the profile into a registry as
// `{vm}_opcode_executions_total{op=...}` and
// `{vm}_opcode_{costUnit}_total{op=...}` counters (e.g. vm="evm",
// costUnit="gas"). Export is incremental: repeated calls only add what
// accumulated since the previous call, so it never double-counts.
func (p *OpcodeProfile) Export(r *Registry, vm, costUnit string) {
	if p == nil || r == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for name, st := range p.ops {
		prev := p.exported[name]
		if d := st.Count - prev.Count; d > 0 {
			r.Counter(vm+"_opcode_executions_total", L("op", name)).Add(d)
		}
		if d := st.Cost - prev.Cost; d > 0 {
			r.Counter(vm+"_opcode_"+costUnit+"_total", L("op", name)).Add(d)
		}
		p.exported[name] = *st
	}
}
