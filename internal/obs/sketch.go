package obs

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// SketchAlpha is the relative accuracy of quantile sketches: a reported
// quantile q̂ satisfies |q̂ - q| <= SketchAlpha·q for any value inside the
// indexable range. 1% keeps the bucket array around 1.4k entries.
const SketchAlpha = 0.01

// sketchMinValue and sketchMaxValue bound the indexable range in seconds:
// one microsecond up to ~11.5 simulated days. Values outside the range
// are clamped into the edge buckets; the exact Min/Max are tracked
// separately, so clamping only costs accuracy, never loses observations.
const (
	sketchMinValue = 1e-6
	sketchMaxValue = 1e6
)

// QuantileSketch is a fixed-memory streaming quantile estimator in the
// DDSketch family: observations land in logarithmically spaced buckets
// (relative width SketchAlpha), so p50/p90/p99/p999 over millions of
// latencies cost one bounded uint64 array. Two sketches with the same
// layout merge by bucket-wise addition — a commutative, associative
// operation, so merging per-shard or per-worker sketches produces
// bit-identical state regardless of merge order. The running sum is kept
// in fixed-point nanounits (integer addition) for the same reason; a
// float64 sum would drift with merge order.
//
// A nil *QuantileSketch is a no-op, like every other instrument.
type QuantileSketch struct {
	mu     sync.Mutex
	gamma  float64
	invLog float64 // 1 / ln(gamma)
	minIdx int     // logical index of counts[0]
	counts []uint64
	count  uint64
	sumNs  uint64 // Σ value·1e9, saturating
	min    float64
	max    float64
}

// NewQuantileSketch returns an empty sketch with the package-default
// layout (SketchAlpha relative accuracy over [1µs, 1e6s]).
func NewQuantileSketch() *QuantileSketch {
	gamma := (1 + SketchAlpha) / (1 - SketchAlpha)
	invLog := 1 / math.Log(gamma)
	minIdx := int(math.Ceil(math.Log(sketchMinValue) * invLog))
	maxIdx := int(math.Ceil(math.Log(sketchMaxValue) * invLog))
	return &QuantileSketch{
		gamma:  gamma,
		invLog: invLog,
		minIdx: minIdx,
		counts: make([]uint64, maxIdx-minIdx+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// bucketOf maps a value to a slot of counts, clamping out-of-range values
// into the edge buckets.
func (s *QuantileSketch) bucketOf(v float64) int {
	if v <= sketchMinValue {
		return 0
	}
	i := int(math.Ceil(math.Log(v)*s.invLog)) - s.minIdx
	if i < 0 {
		i = 0
	}
	if i >= len(s.counts) {
		i = len(s.counts) - 1
	}
	return i
}

// Observe records one value. NaN and negative values are counted into the
// lowest bucket with the value treated as 0, so Count stays an exact
// observation tally.
func (s *QuantileSketch) Observe(v float64) {
	if s == nil {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	ns := uint64(0)
	if v > 0 {
		f := math.Round(v * 1e9)
		if f >= math.MaxUint64 {
			ns = math.MaxUint64
		} else {
			ns = uint64(f)
		}
	}
	i := s.bucketOf(v)
	s.mu.Lock()
	s.counts[i]++
	s.count++
	if s.sumNs > math.MaxUint64-ns {
		s.sumNs = math.MaxUint64
	} else {
		s.sumNs += ns
	}
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (s *QuantileSketch) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Merge folds other into s bucket-wise. Both sketches must share a
// layout; package-constructed sketches always do.
func (s *QuantileSketch) Merge(other *QuantileSketch) error {
	if s == nil || other == nil {
		return nil
	}
	return s.MergeSnapshot(other.Snapshot())
}

// MergeSnapshot folds a point-in-time snapshot into s. Bucket counts,
// the total count and the fixed-point sum are added; min/max combine by
// comparison. Every component is commutative and associative, so any
// merge order over the same set of snapshots yields bit-identical state.
func (s *QuantileSketch) MergeSnapshot(snap SketchSnapshot) error {
	if s == nil || snap.Count == 0 && len(snap.Counts) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Gamma != s.gamma || snap.MinIndex != s.minIdx || len(snap.Counts) != len(s.counts) {
		return fmt.Errorf("obs: cannot merge quantile sketches with different layouts (gamma %v/%v, %d/%d buckets)",
			snap.Gamma, s.gamma, len(snap.Counts), len(s.counts))
	}
	for i, c := range snap.Counts {
		s.counts[i] += c
	}
	s.count += snap.Count
	if s.sumNs > math.MaxUint64-snap.SumNanos {
		s.sumNs = math.MaxUint64
	} else {
		s.sumNs += snap.SumNanos
	}
	if snap.Count > 0 {
		if snap.Min < s.min {
			s.min = snap.Min
		}
		if snap.Max > s.max {
			s.max = snap.Max
		}
	}
	return nil
}

// SketchSnapshot is a point-in-time copy of a sketch. It answers quantile
// queries itself, so merged or diffed snapshots stay queryable without a
// live sketch behind them.
type SketchSnapshot struct {
	Gamma    float64
	MinIndex int
	Counts   []uint64
	Count    uint64
	SumNanos uint64
	Min      float64
	Max      float64
}

// Snapshot copies the current state.
func (s *QuantileSketch) Snapshot() SketchSnapshot {
	if s == nil {
		return SketchSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SketchSnapshot{
		Gamma:    s.gamma,
		MinIndex: s.minIdx,
		Counts:   append([]uint64(nil), s.counts...),
		Count:    s.count,
		SumNanos: s.sumNs,
		Min:      s.min,
		Max:      s.max,
	}
}

// Count reports the number of observations.
func (s *QuantileSketch) Count() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Sum reports the sum of observed values in seconds.
func (s SketchSnapshot) Sum() float64 { return float64(s.SumNanos) / 1e9 }

// Quantile estimates the q-quantile (q in [0,1]) of the observed values,
// accurate to SketchAlpha relative error inside the indexable range. An
// empty snapshot reports NaN; q <= 0 and q >= 1 report the exact Min and
// Max.
func (s SketchSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			// Bucket i covers (gamma^(idx-1), gamma^idx]; report the
			// geometric midpoint, clamped to the exact observed extremes.
			idx := float64(s.MinIndex + i)
			v := 2 * math.Pow(s.Gamma, idx) / (s.Gamma + 1)
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Quantile is the live-sketch convenience for Snapshot().Quantile(q).
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s == nil {
		return math.NaN()
	}
	return s.Snapshot().Quantile(q)
}

// SketchQuantiles are the quantiles rendered in the Prometheus summary
// exposition and the time-series sampler.
var SketchQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// quantileLabel renders a quantile as its exposition label value (0.5 ->
// "0.5", 0.999 -> "0.999").
func quantileLabel(q float64) string { return formatFloat(q) }
