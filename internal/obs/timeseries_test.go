package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplerRecordsAllKinds(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", L("x", "1")).Add(5)
	reg.Gauge("g").Set(2.5)
	reg.Histogram("h_seconds", nil).Observe(0.1)
	reg.Sketch("q_latency").Observe(0.25)

	s := NewSampler(reg, 8)
	s.Sample()
	if got := s.Samples(); got != 1 {
		t.Fatalf("Samples = %d, want 1", got)
	}
	for _, id := range []string{
		`c_total{x="1"}`, "g",
		"h_seconds_count", "h_seconds_sum",
		"q_latency_count", "q_latency_sum", "q_latency_p50", "q_latency_p99",
	} {
		if len(s.History(id)) != 1 {
			t.Errorf("History(%q) = %v, want one point", id, s.History(id))
		}
	}
	if got := s.History(`c_total{x="1"}`)[0].V; got != 5 {
		t.Errorf("counter sample = %v, want 5", got)
	}
}

func TestSamplerRingBounds(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	s := NewSampler(reg, 4)
	for i := 1; i <= 10; i++ {
		c.Add(uint64(i))
		s.Sample()
	}
	pts := s.History("c_total")
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want capacity 4", len(pts))
	}
	// Oldest-first ordering: cumulative counter values 28, 36, 45, 55.
	want := []float64{28, 36, 45, 55}
	for i, p := range pts {
		if p.V != want[i] {
			t.Fatalf("ring points = %v, want values %v", pts, want)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatal("ring points out of time order")
		}
	}
}

func TestSamplerDeltasAndCounterReset(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", L("shard", "0"))
	c2 := reg.Counter("c_total", L("shard", "1"))
	s := NewSampler(reg, 16)
	c.Add(10)
	c2.Add(1)
	s.Sample()
	c.Add(5)
	c2.Add(2)
	s.Sample()
	d, dt, ok := s.LastDelta(`c_total{shard="0"}`)
	if !ok || d != 5 {
		t.Fatalf("LastDelta = %v,%v,%v, want 5", d, dt, ok)
	}
	fd, _, ok := s.FamilyDelta("c_total", 1)
	if !ok || fd != 7 {
		t.Fatalf("FamilyDelta = %v, want 7 (5 + 2 across label sets)", fd)
	}
	// Windowed delta spans multiple sample intervals, clamped to history.
	c.Add(1)
	s.Sample()
	wd, _, ok := s.WindowDelta(`c_total{shard="0"}`, 2)
	if !ok || wd != 6 {
		t.Fatalf("WindowDelta(2) = %v, want 6 (5 + 1 across two intervals)", wd)
	}
	// A window wider than the history clamps to the oldest point (value
	// 10), not to zero.
	wd, _, ok = s.WindowDelta(`c_total{shard="0"}`, 100)
	if !ok || wd != 6 {
		t.Fatalf("WindowDelta(100) = %v, want 6 (clamped to the recorded history)", wd)
	}
	// A counter that goes backwards restarted: delta counts from zero
	// instead of underflowing (Prometheus rate() semantics).
	if got := counterDelta(100, 3); got != 3 {
		t.Fatalf("counterDelta(100, 3) = %v, want 3 (reset semantics)", got)
	}
	ds := s.LastDeltas(`c_total{shard="0"}`, 8)
	if len(ds) != 2 || ds[0] != 5 || ds[1] != 1 {
		t.Fatalf("LastDeltas = %v, want [5 1] oldest first", ds)
	}
}

func TestSamplerWriteJSON(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	s := NewSampler(reg, 8)
	c.Add(1)
	s.Sample()
	c.Add(3)
	s.Sample()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Samples  uint64 `json:"samples"`
		Capacity int    `json:"capacity"`
		Series   []struct {
			ID        string  `json:"id"`
			Kind      string  `json:"kind"`
			LastDelta float64 `json:"last_delta"`
			Points    []struct {
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid /timeseries JSON: %v\n%s", err, buf.String())
	}
	if doc.Samples != 2 || doc.Capacity != 8 || len(doc.Series) != 1 {
		t.Fatalf("doc = %+v, want 2 samples, capacity 8, one series", doc)
	}
	sr := doc.Series[0]
	if sr.ID != "c_total" || sr.Kind != "counter" || sr.LastDelta != 3 || len(sr.Points) != 2 {
		t.Fatalf("series = %+v, want c_total counter with delta 3 and 2 points", sr)
	}
	// Nil sampler still writes a valid (empty) document.
	var nilS *Sampler
	buf.Reset()
	if err := nilS.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"series": []`) {
		t.Fatalf("nil sampler JSON = %s", buf.String())
	}
}

// TestSamplerConcurrentSampleWhileWrite exercises Sample racing metric
// writes, History/WriteJSON reads and a second Sample under -race.
func TestSamplerConcurrentSampleWhileWrite(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, 32)
	c := reg.Counter("c_total")
	sk := reg.Sketch("q_latency")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				c.Inc()
				sk.Observe(float64(i%100) / 1000)
				reg.Gauge("g", L("w", string(rune('a'+w)))).Set(float64(i))
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			var buf bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
					s.Sample()
					_ = s.History("c_total")
					_, _, _ = s.FamilyDelta("c_total", 2)
					buf.Reset()
					_ = s.WriteJSON(&buf)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	s.Sample()
	pts := s.History("c_total")
	if len(pts) == 0 || pts[len(pts)-1].V != 12000 {
		t.Fatalf("final counter sample = %v, want 12000", pts)
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Inc()
	s := NewSampler(reg, 8)
	s.Start(time.Millisecond)
	s.Start(time.Millisecond) // second Start is a no-op, not a leak
	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if s.Samples() < 2 {
		t.Fatalf("background sampler took only %d samples in 2s", s.Samples())
	}
	n := s.Samples()
	time.Sleep(5 * time.Millisecond)
	if s.Samples() != n {
		t.Fatal("sampler kept sampling after Stop")
	}
	s.Sample() // explicit sampling still works after Stop
	if s.Samples() != n+1 {
		t.Fatal("explicit Sample after Stop failed")
	}
}

func TestIDWithSuffix(t *testing.T) {
	if got := idWithSuffix(`lat{chain="x"}`, "_count"); got != `lat_count{chain="x"}` {
		t.Errorf("idWithSuffix = %q", got)
	}
	if got := idWithSuffix("lat", "_sum"); got != "lat_sum" {
		t.Errorf("idWithSuffix = %q", got)
	}
}
