package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// telemetryFixture builds a Telemetry over a fresh bundle with the given
// rules; the caller drives the metrics and calls Tick.
func telemetryFixture(rules []Rule) *Telemetry {
	return NewTelemetry(New(), 0, rules)
}

func TestHealthRateMinBreach(t *testing.T) {
	tel := telemetryFixture([]Rule{{
		Name: "floor", Kind: RuleRateMin, Series: "txs_total", Threshold: 1, Grace: 1,
	}})
	c := tel.Obs.Registry.Counter("txs_total", L("shard", "0"))
	c.Add(10)
	tel.Tick() // sample 1: inside grace, not evaluated
	if !tel.Health.Healthy() {
		t.Fatal("breached inside grace window")
	}
	c.Add(10)
	tel.Tick() // sample 2: rate > 0, healthy
	if !tel.Health.Healthy() {
		t.Fatal("breached while rate was above the floor")
	}
	tel.Tick() // sample 3: no progress — rate 0 < 1, breach
	if tel.Health.Healthy() {
		t.Fatal("flatlined counter did not trip the throughput floor")
	}
	// Sticky verdict: recovering throughput does not clear the flag.
	c.Add(100)
	tel.Tick()
	if tel.Health.Healthy() {
		t.Fatal("health verdict must stay red after a breach (flight-recorder semantics)")
	}
	if tel.Obs.Registry.Counter("obs_slo_breaches_total", L("rule", "floor")).Value() == 0 {
		t.Error("breach did not increment obs_slo_breaches_total")
	}
}

func TestHealthRateMaxAndGauge(t *testing.T) {
	tel := telemetryFixture([]Rule{
		{Name: "ceil", Kind: RuleRateMax, Series: "rejected_total", Threshold: 0, Grace: 0},
		{Name: "gmax", Kind: RuleGaugeMax, Series: "depth", Threshold: 5, Grace: 0},
	})
	rej := tel.Obs.Registry.Counter("rejected_total")
	depth := tel.Obs.Registry.Gauge("depth")
	tel.Tick()
	tel.Tick()
	if !tel.Health.Healthy() {
		t.Fatal("healthy run tripped a rule")
	}
	rej.Inc()
	depth.Set(6)
	tel.Tick()
	if tel.Health.Healthy() {
		t.Fatal("rejection + gauge overrun did not breach")
	}
	if got := tel.Health.Breaches(); got != 2 {
		t.Fatalf("Breaches = %d, want 2 (rate_max and gauge_max)", got)
	}
}

func TestHealthQuantileAndRatio(t *testing.T) {
	tel := telemetryFixture([]Rule{
		{Name: "tail", Kind: RuleQuantileMax, Series: "lat", Quantile: 0.99, Threshold: 1, Grace: 0},
		{Name: "recov", Kind: RuleRatioMin, Series: "recovered_total", Denominator: "injected_total", Threshold: 0.5, Grace: 0},
	})
	reg := tel.Obs.Registry
	sk := reg.Sketch("lat", L("chain", "a"))
	for i := 0; i < 100; i++ {
		sk.Observe(0.01)
	}
	tel.Tick()
	tel.Tick()
	if !tel.Health.Healthy() {
		t.Fatal("fast latencies tripped the tail ceiling")
	}
	// Push p99 over 1s through a second label set: the rule watches the
	// merged family, so the slow shard must show through.
	slow := reg.Sketch("lat", L("chain", "b"))
	for i := 0; i < 500; i++ {
		slow.Observe(30)
	}
	tel.Tick()
	if tel.Health.Healthy() {
		t.Fatal("merged p99 over threshold did not breach")
	}
	// Ratio rule: only evaluates once the denominator is non-zero.
	recovBreaches := reg.Counter("obs_slo_breaches_total", L("rule", "recov"))
	if recovBreaches.Value() != 0 {
		t.Fatal("ratio rule evaluated with a zero denominator")
	}
	reg.Counter("injected_total", L("class", "x")).Add(10)
	reg.Counter("recovered_total", L("class", "x")).Add(2)
	tel.Tick()
	if recovBreaches.Value() == 0 {
		t.Fatal("recovery ratio 0.2 < 0.5 did not breach")
	}
}

func TestHealthAnomalyBundleAndReport(t *testing.T) {
	tel := telemetryFixture([]Rule{{
		Name: "floor", Kind: RuleRateMin, Series: "txs_total", Threshold: 1, Grace: 1,
	}})
	reg := tel.Obs.Registry
	c := reg.Counter("txs_total")
	sk := reg.Sketch("lat")
	sp := tel.Obs.Tracer.Start("round", L("i", "1"))
	sp.End()
	for i := 0; i < 50; i++ {
		sk.Observe(0.1)
	}
	c.Add(5)
	tel.Tick()
	c.Add(5)
	tel.Tick()
	tel.Tick() // flatline -> breach
	rep := tel.Health.Report()
	if rep.Healthy || rep.TotalBreaches == 0 || len(rep.Anomalies) == 0 {
		t.Fatalf("report = %+v, want an unhealthy report with anomalies", rep)
	}
	a := rep.Anomalies[0]
	if a.Rule.Name != "floor" || a.Value != 0 {
		t.Errorf("anomaly = %+v, want the floor rule at rate 0", a)
	}
	if len(a.Deltas["txs_total"]) == 0 {
		t.Errorf("anomaly lacks the breaching series' recent deltas: %+v", a.Deltas)
	}
	if qs, ok := a.Quantiles["lat"]; !ok || qs["p99"] == 0 {
		t.Errorf("anomaly lacks merged sketch quantiles: %+v", a.Quantiles)
	}
	if len(a.Spans) == 0 || a.Spans[0].Name != "round" {
		t.Errorf("anomaly lacks recent spans: %+v", a.Spans)
	}
	if !strings.Contains(a.Goroutines, "goroutine") {
		t.Error("first anomaly lacks a goroutine dump")
	}

	path := filepath.Join(t.TempDir(), "HEALTH_report.json")
	if err := tel.Health.WriteReportFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back HealthReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("HEALTH_report.json does not round-trip: %v", err)
	}
	if back.Healthy || back.TotalBreaches != rep.TotalBreaches {
		t.Fatalf("round-tripped report = %+v", back)
	}
}

func TestHealthAnomalyBounds(t *testing.T) {
	tel := telemetryFixture([]Rule{{
		Name: "floor", Kind: RuleRateMin, Series: "txs_total", Threshold: 1, Grace: 0,
	}})
	tel.Obs.Registry.Counter("txs_total").Inc()
	// Breach far past the bundle cap: memory must stay bounded.
	for i := 0; i < maxAnomalies+20; i++ {
		tel.Tick()
	}
	rep := tel.Health.Report()
	if len(rep.Anomalies) != maxAnomalies {
		t.Fatalf("kept %d bundles, want cap %d", len(rep.Anomalies), maxAnomalies)
	}
	if rep.AnomaliesDropped == 0 {
		t.Error("dropped bundles not counted")
	}
	dumps := 0
	for _, a := range rep.Anomalies {
		if a.Goroutines != "" {
			dumps++
		}
	}
	if dumps != maxGoroutineDumps {
		t.Fatalf("%d goroutine dumps, want %d", dumps, maxGoroutineDumps)
	}
}

func TestNilTelemetryIsNoOp(t *testing.T) {
	var tel *Telemetry
	tel.Tick() // must not panic
	var m *HealthMonitor
	if !m.Healthy() || m.Breaches() != 0 || m.Rules() != nil || m.Evaluate() != nil {
		t.Error("nil monitor is not a clean no-op")
	}
	rep := m.Report()
	if rep == nil || !rep.Healthy {
		t.Error("nil monitor report should be healthy")
	}
	var s *Sampler
	s.Sample()
	s.Start(0)
	s.Stop()
	if s.History("x") != nil || s.SeriesIDs() != nil {
		t.Error("nil sampler leaked state")
	}
	// Telemetry over a nil Obs: sampling and evaluating must not panic.
	tel2 := NewTelemetry(nil, 0, []Rule{{Name: "r", Kind: RuleRateMin, Series: "x", Threshold: 1}})
	tel2.Tick()
	tel2.Tick()
	if !tel2.Health.Healthy() {
		t.Error("telemetry over nil obs breached")
	}
}
