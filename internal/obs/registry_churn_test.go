package obs

import (
	"strings"
	"testing"
)

// TestLabelEscapingConformance pins the Prometheus text-format escaping
// rules: exactly backslash, double-quote and newline are escaped; other
// control characters and non-ASCII UTF-8 pass through verbatim. Go's %q
// would turn the tab into \t and the kanji into \u sequences — both
// undefined in the exposition format.
func TestLabelEscapingConformance(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"\\\"\n", `\\\"\n`},
		{"tab\there", "tab\there"},
		{"héllo wörld", "héllo wörld"},
		{"日本語", "日本語"},
		{"mixed \\ \" \n 日本", `mixed \\ \" \n 日本`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}

	// End to end: the rendered exposition carries the escaped value on one
	// line, and HELP text escapes backslash+newline (quotes legal there).
	r := NewRegistry()
	r.Counter("c_total", L("path", "a\\b\"c\nd"), L("utf8", "héllo")).Add(1)
	r.Help("c_total", "Line one\nline \\two \"quoted\".")
	text := r.Text()
	if !strings.Contains(text, `c_total{path="a\\b\"c\nd",utf8="héllo"} 1`) {
		t.Errorf("exposition label escaping wrong:\n%s", text)
	}
	if !strings.Contains(text, `# HELP c_total Line one\nline \\two "quoted".`) {
		t.Errorf("HELP escaping wrong:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("raw newline leaked into the exposition:\n%s", text)
		}
	}
}

func TestSummaryExposition(t *testing.T) {
	r := NewRegistry()
	sk := r.Sketch("lat", L("chain", "x"))
	for i := 0; i < 100; i++ {
		sk.Observe(2)
	}
	r.Sketch("lat_empty")
	text := r.Text()
	if !strings.Contains(text, "# TYPE lat summary") {
		t.Errorf("summary TYPE line missing:\n%s", text)
	}
	for _, q := range []string{"0.5", "0.9", "0.99", "0.999"} {
		if !strings.Contains(text, `lat{chain="x",quantile="`+q+`"}`) {
			t.Errorf("quantile %s line missing:\n%s", q, text)
		}
	}
	if !strings.Contains(text, `lat_sum{chain="x"} 200`) || !strings.Contains(text, `lat_count{chain="x"} 100`) {
		t.Errorf("summary _sum/_count wrong:\n%s", text)
	}
	if !strings.Contains(text, `lat_empty{quantile="0.5"} NaN`) {
		t.Errorf("empty summary should expose NaN quantiles:\n%s", text)
	}
}

func TestMergedSketchAcrossLabelSets(t *testing.T) {
	r := NewRegistry()
	r.Sketch("lat", L("shard", "0")).Observe(1)
	r.Sketch("lat", L("shard", "1")).Observe(100)
	merged, ok := r.MergedSketch("lat")
	if !ok || merged.Count != 2 {
		t.Fatalf("merged = %+v, %v; want both shards", merged, ok)
	}
	if merged.Min != 1 || merged.Max != 100 {
		t.Errorf("merged extremes = %v/%v, want 1/100", merged.Min, merged.Max)
	}
	if _, ok := r.MergedSketch("missing"); ok {
		t.Error("MergedSketch of an absent family reported ok")
	}
}

// TestSnapshotDiffSeriesChurn covers the churn cases Diff must survive:
// series born between the snapshots, series gone by the later snapshot,
// counter resets, histogram bucket-layout drift and non-monotonic counts.
func TestSnapshotDiffSeriesChurn(t *testing.T) {
	// Series only in the later snapshot: counts from zero.
	later := &Snapshot{
		Counters:   map[string]uint64{"new_total": 7},
		Gauges:     map[string]float64{"g": 1},
		Histograms: map[string]HistogramSnapshot{"h": {Bounds: []float64{1}, Counts: []uint64{2, 1}, Sum: 3, Count: 3}},
		Sketches:   map[string]SketchSnapshot{},
	}
	d := later.Diff(&Snapshot{Counters: map[string]uint64{}, Histograms: map[string]HistogramSnapshot{}})
	if d.Counters["new_total"] != 7 || d.Histograms["h"].Count != 3 {
		t.Errorf("fresh series should count from zero: %+v", d)
	}

	// Series only in the earlier snapshot: dropped, not resurrected.
	gone := &Snapshot{Counters: map[string]uint64{}}
	d = gone.Diff(later)
	if _, ok := d.Counters["new_total"]; ok {
		t.Error("vanished series resurrected in the diff")
	}

	// Counter reset: earlier value above the later one counts from zero.
	cur := &Snapshot{Counters: map[string]uint64{"c": 3}}
	d = cur.Diff(&Snapshot{Counters: map[string]uint64{"c": 100}})
	if d.Counters["c"] != 3 {
		t.Errorf("reset counter diff = %d, want 3 (not a uint64 wrap)", d.Counters["c"])
	}

	// Histogram bucket-layout drift: same series id, different bounds.
	// Subtracting positionally would misattribute counts; the diff must
	// fall back to counting from zero.
	curH := &Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Bounds: []float64{1, 10}, Counts: []uint64{5, 2, 1}, Sum: 20, Count: 8},
	}}
	prevH := &Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Bounds: []float64{1, 5}, Counts: []uint64{3, 1, 0}, Sum: 5, Count: 4},
	}}
	d = curH.Diff(prevH)
	if got := d.Histograms["h"]; got.Count != 8 || got.Sum != 20 {
		t.Errorf("layout-drift diff = %+v, want the full later state", got)
	}

	// Non-monotonic histogram (restarted instrument): from zero, no wrap.
	prevBig := &Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Bounds: []float64{1, 10}, Counts: []uint64{50, 20, 10}, Sum: 200, Count: 80},
	}}
	d = curH.Diff(prevBig)
	if got := d.Histograms["h"]; got.Count != 8 || got.Counts[0] != 5 {
		t.Errorf("restarted-histogram diff = %+v, want the full later state", got)
	}

	// Sketch churn mirrors histograms: layout mismatch and regressions
	// fall back to the later state, Min/Max stay the cumulative extremes.
	skCur := NewQuantileSketch()
	skCur.Observe(1)
	skCur.Observe(2)
	curS := &Snapshot{Sketches: map[string]SketchSnapshot{"s": skCur.Snapshot()}}
	badPrev := &Snapshot{Sketches: map[string]SketchSnapshot{
		"s": {Gamma: 2, MinIndex: 0, Counts: []uint64{1}, Count: 1, SumNanos: 1},
	}}
	d = curS.Diff(badPrev)
	if got := d.Sketches["s"]; got.Count != 2 || got.Min != 1 || got.Max != 2 {
		t.Errorf("sketch layout-drift diff = %+v, want the full later state", got)
	}
	skPrev := NewQuantileSketch()
	skPrev.Observe(1)
	prevS := &Snapshot{Sketches: map[string]SketchSnapshot{"s": skPrev.Snapshot()}}
	d = curS.Diff(prevS)
	if got := d.Sketches["s"]; got.Count != 1 {
		t.Errorf("sketch diff count = %d, want 1", got.Count)
	}

	// Diff against nil stays total, and Diff must never panic on any of
	// the above even with empty maps.
	d = later.Diff(nil)
	if d.Counters["new_total"] != 7 {
		t.Errorf("Diff(nil) = %+v, want the full state", d)
	}
}
