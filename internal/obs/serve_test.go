package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServeEndpoints(t *testing.T) {
	tel := telemetryFixture([]Rule{{
		Name: "floor", Kind: RuleRateMin, Series: "txs_total", Threshold: 1, Grace: 1,
	}})
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	reg := tel.Obs.Registry
	reg.Help("txs_total", "Transactions.")
	c := reg.Counter("txs_total")
	reg.Sketch("lat", L("chain", "x\"y\nz")).Observe(0.5)
	sp := tel.Obs.Tracer.Start("round")
	sp.End()
	c.Add(3)
	tel.Tick()

	code, ctype, body := getBody(t, base+"/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics: %d %s", code, ctype)
	}
	if !strings.Contains(body, "txs_total 3") || !strings.Contains(body, `chain="x\"y\nz"`) {
		t.Fatalf("/metrics body missing counter or escaped label:\n%s", body)
	}

	code, ctype, body = getBody(t, base+"/timeseries")
	if code != 200 || ctype != "application/json" || !strings.Contains(body, `"txs_total"`) {
		t.Fatalf("/timeseries: %d %s\n%s", code, ctype, body)
	}

	code, _, body = getBody(t, base+"/trace")
	if code != 200 || !strings.Contains(body, `"round"`) {
		t.Fatalf("/trace: %d\n%s", code, body)
	}

	code, _, body = getBody(t, base+"/health")
	if code != 200 || !strings.Contains(body, `"healthy": true`) {
		t.Fatalf("/health before breach: %d\n%s", code, body)
	}

	code, _, _ = getBody(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}

	// Live endpoints change as the run progresses: a second mid-run scrape
	// must observe the new counter value and the extra sample.
	c.Add(4)
	tel.Tick()
	_, _, body = getBody(t, base+"/metrics")
	if !strings.Contains(body, "txs_total 7") {
		t.Fatalf("/metrics is not live:\n%s", body)
	}
	tel.Tick() // flatline -> floor breach
	code, _, body = getBody(t, base+"/health")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"healthy": false`) {
		t.Fatalf("/health after breach: %d\n%s", code, body)
	}
}

func TestServeQuitQuitQuit(t *testing.T) {
	tel := telemetryFixture(nil)
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, _, _ := getBody(t, base+"/quitquitquit")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /quitquitquit = %d, want 405", code)
	}
	select {
	case <-srv.QuitRequested():
		t.Fatal("GET must not trigger quit")
	default:
	}
	resp, err := http.Post(base+"/quitquitquit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-srv.QuitRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("POST /quitquitquit did not close QuitRequested")
	}
	// A second POST after the channel closed must not panic.
	resp, err = http.Post(base+"/quitquitquit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestServeNilTelemetry(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil) should error")
	}
}
