package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Level is a log severity.
type Level int

// Severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way the log lines do.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Logger is a leveled key=value structured logger backed by an
// io.Writer. The nil *Logger is the no-op logger and is the default
// everywhere, so the benchmarks never pay for log formatting.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
}

// NewLogger creates a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// Enabled reports whether a line at the given level would be written.
// Call it before building expensive key/value lists on hot paths.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var sb strings.Builder
	sb.WriteString("level=")
	sb.WriteString(level.String())
	sb.WriteString(" msg=")
	sb.WriteString(quoteIfNeeded(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		sb.WriteByte(' ')
		fmt.Fprintf(&sb, "%v", kv[i])
		sb.WriteByte('=')
		sb.WriteString(quoteIfNeeded(fmt.Sprintf("%v", kv[i+1])))
	}
	if len(kv)%2 == 1 {
		sb.WriteString(" !MISSING_VALUE=")
		sb.WriteString(quoteIfNeeded(fmt.Sprintf("%v", kv[len(kv)-1])))
	}
	sb.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, sb.String())
	l.mu.Unlock()
}

func quoteIfNeeded(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
