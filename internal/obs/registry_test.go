package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("chain", "goerli"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("reqs_total", L("chain", "goerli")); same != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if other := r.Counter("reqs_total", L("chain", "polygon")); other == c {
		t.Fatal("different labels must return a different counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	if txt := r.Text(); txt != "" {
		t.Fatalf("nil registry text = %q, want empty", txt)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var c *Counter
	c.Inc() // must not panic
	var g *Gauge
	g.Add(1)
	var h *Histogram
	h.Observe(1)
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2.5, 5})
	// Upper bounds are inclusive (Prometheus `le` semantics).
	for _, v := range []float64{0.5, 1.0} { // both land in le=1
		h.Observe(v)
	}
	h.Observe(1.0000001) // le=2.5
	h.Observe(2.5)       // le=2.5
	h.Observe(5.0)       // le=5
	h.Observe(100)       // +Inf overflow

	s := h.Snapshot()
	wantCounts := []uint64{2, 2, 1, 1}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if want := 0.5 + 1 + 1.0000001 + 2.5 + 5 + 100; s.Sum != want {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("blocks_total", L("chain", "goerli")).Add(3)
	r.Counter("blocks_total", L("chain", "algorand")).Add(7)
	r.Gauge("base_fee_wei").Set(1.5e9)
	h := r.Histogram("latency_seconds", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(30)

	want := strings.Join([]string{
		`# TYPE base_fee_wei gauge`,
		`base_fee_wei 1.5e+09`,
		`# TYPE blocks_total counter`,
		`blocks_total{chain="algorand"} 7`,
		`blocks_total{chain="goerli"} 3`,
		`# TYPE latency_seconds histogram`,
		`latency_seconds_bucket{le="1"} 1`,
		`latency_seconds_bucket{le="5"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		`latency_seconds_sum 33.5`,
		`latency_seconds_count 3`,
	}, "\n") + "\n"
	if got := r.Text(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("lat", []float64{1})
	c.Add(10)
	h.Observe(0.5)
	before := r.Snapshot()
	c.Add(5)
	h.Observe(2)
	h.Observe(0.2)
	after := r.Snapshot()

	d := after.Diff(before)
	if got := d.Counters["ops_total"]; got != 5 {
		t.Errorf("diff counter = %d, want 5", got)
	}
	dh := d.Histograms["lat"]
	if dh.Count != 2 {
		t.Errorf("diff hist count = %d, want 2", dh.Count)
	}
	if dh.Counts[0] != 1 || dh.Counts[1] != 1 {
		t.Errorf("diff hist buckets = %v, want [1 1]", dh.Counts)
	}
	if dh.Sum != 2.2 {
		t.Errorf("diff hist sum = %v, want 2.2", dh.Sum)
	}
}

// TestRegistryConcurrentLabelSets checks series identity under
// concurrent creators — what RunMatrix workers do when every cell
// registers the same families: the same label set must resolve to the
// same instrument no matter which goroutine created it first or in what
// key order the labels were passed, and distinct label sets must stay
// distinct. Run under -race.
func TestRegistryConcurrentLabelSets(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perW = 500
	chains := []string{"goerli", "polygon", "algorand"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				chain := chains[i%len(chains)]
				// Alternate label order: rendering sorts keys, so both
				// must hit the same series.
				if i%2 == 0 {
					r.Counter("ops_total", L("chain", chain), L("op", "attach")).Inc()
				} else {
					r.Counter("ops_total", L("op", "attach"), L("chain", chain)).Inc()
				}
				r.Histogram("lat_seconds", []float64{1, 10}, L("chain", chain)).Observe(1)
			}
		}(w)
	}
	wg.Wait()

	var totalOps uint64
	var totalLat uint64
	for _, chain := range chains {
		totalOps += r.Counter("ops_total", L("chain", chain), L("op", "attach")).Value()
		totalLat += r.Histogram("lat_seconds", nil, L("chain", chain)).Snapshot().Count
	}
	if want := uint64(workers * perW); totalOps != want {
		t.Errorf("ops_total across label sets = %d, want %d (split series?)", totalOps, want)
	}
	if want := uint64(workers * perW); totalLat != want {
		t.Errorf("lat_seconds count across label sets = %d, want %d", totalLat, want)
	}
	// Exactly one exposition line per label set, labels sorted.
	text := r.Text()
	for _, chain := range chains {
		id := `ops_total{chain="` + chain + `",op="attach"}`
		if got := strings.Count(text, id+" "); got != 1 {
			t.Errorf("exposition has %d lines for %s, want 1", got, id)
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// metric creation, counter increments, gauge updates and histogram
// observations — and checks exact totals. Run under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("mine_total", L("g", string(rune('a'+id)))).Inc()
				r.Gauge("depth").Set(float64(i))
				r.Gauge("acc").Add(1)
				r.Histogram("lat", []float64{1, 10}).Observe(float64(i % 20))
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.Text()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("shared_total").Value(); got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("acc").Value(); got != goroutines*perG {
		t.Errorf("gauge acc = %v, want %d", got, goroutines*perG)
	}
	s := r.Histogram("lat", nil).Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", s.Count, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := r.Counter("mine_total", L("g", string(rune('a'+g)))).Value(); got != perG {
			t.Errorf("per-goroutine counter %d = %d, want %d", g, got, perG)
		}
	}
}
