package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSpanParentChildNesting(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Start("pipeline")
	child := tr.Start("lookup") // implicit child of root
	grand := tr.Start("hop")    // implicit child of lookup
	grand.End()
	sibling := tr.Start("hop") // back under lookup after grand ended
	sibling.End()
	child.End()
	after := tr.Start("submit") // under root again
	after.End()
	root.End()

	if child.ParentID != root.ID {
		t.Errorf("lookup parent = %d, want root %d", child.ParentID, root.ID)
	}
	if grand.ParentID != child.ID {
		t.Errorf("hop parent = %d, want lookup %d", grand.ParentID, child.ID)
	}
	if sibling.ParentID != child.ID {
		t.Errorf("second hop parent = %d, want lookup %d", sibling.ParentID, child.ID)
	}
	if after.ParentID != root.ID {
		t.Errorf("submit parent = %d, want root %d", after.ParentID, root.ID)
	}
	if root.ParentID != 0 {
		t.Errorf("root parent = %d, want 0", root.ParentID)
	}

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("completed spans = %d, want 5", len(spans))
	}
	// Completion order: grand, sibling, child, after, root.
	if spans[len(spans)-1] != root {
		t.Error("root must complete last")
	}
	if root.Duration < child.Duration {
		t.Error("root must last at least as long as its child")
	}
}

func TestSpanExplicitChildAndDoubleEnd(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("root")
	c := root.StartChild("worker", L("i", "0"))
	if c.ParentID != root.ID {
		t.Fatalf("explicit child parent = %d, want %d", c.ParentID, root.ID)
	}
	d1 := c.End()
	d2 := c.End() // second End must be a no-op returning the same duration
	if d1 != d2 {
		t.Errorf("double End changed duration: %v != %v", d1, d2)
	}
	root.End()
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("spans = %d, want 2 (double End must not re-record)", got)
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring kept %d spans, want 3", len(spans))
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	// Oldest first: ids 3,4,5 survive.
	for i, want := range []uint64{3, 4, 5} {
		if spans[i].ID != want {
			t.Errorf("span %d id = %d, want %d", i, spans[i].ID, want)
		}
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	s.Label("k", "v")
	if d := s.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
	if c := s.StartChild("y"); c != nil {
		t.Error("nil span StartChild must return nil")
	}
	if tr.Spans() != nil {
		t.Error("nil tracer Spans must be nil")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("pol.submit_proof", L("olc", "7H369F4W+Q8"))
	lookup := tr.Start("pol.discover")
	lookup.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(out.TraceEvents))
	}
	// Sorted by start time: root first.
	ev0, ev1 := out.TraceEvents[0], out.TraceEvents[1]
	if ev0.Name != "pol.submit_proof" || ev1.Name != "pol.discover" {
		t.Errorf("event order: %s, %s", ev0.Name, ev1.Name)
	}
	if ev0.Ph != "X" || ev1.Ph != "X" {
		t.Error("events must be complete events (ph=X)")
	}
	if ev0.Args["olc"] != "7H369F4W+Q8" {
		t.Errorf("root label lost: %v", ev0.Args)
	}
	if ev1.Args["parent_id"] != ev0.Args["span_id"] {
		t.Errorf("child parent_id %q != root span_id %q", ev1.Args["parent_id"], ev0.Args["span_id"])
	}
	// The child must nest inside the root: ts within [root.ts, root.ts+dur].
	if ev1.Ts < ev0.Ts || ev1.Ts+ev1.Dur > ev0.Ts+ev0.Dur+1 /* µs rounding */ {
		t.Errorf("child [%v,%v] not nested in root [%v,%v]", ev1.Ts, ev1.Ts+ev1.Dur, ev0.Ts, ev0.Ts+ev0.Dur)
	}
}
