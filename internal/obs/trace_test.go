package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanParentChildNesting(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Start("pipeline")
	child := tr.Start("lookup") // implicit child of root
	grand := tr.Start("hop")    // implicit child of lookup
	grand.End()
	sibling := tr.Start("hop") // back under lookup after grand ended
	sibling.End()
	child.End()
	after := tr.Start("submit") // under root again
	after.End()
	root.End()

	if child.ParentID != root.ID {
		t.Errorf("lookup parent = %d, want root %d", child.ParentID, root.ID)
	}
	if grand.ParentID != child.ID {
		t.Errorf("hop parent = %d, want lookup %d", grand.ParentID, child.ID)
	}
	if sibling.ParentID != child.ID {
		t.Errorf("second hop parent = %d, want lookup %d", sibling.ParentID, child.ID)
	}
	if after.ParentID != root.ID {
		t.Errorf("submit parent = %d, want root %d", after.ParentID, root.ID)
	}
	if root.ParentID != 0 {
		t.Errorf("root parent = %d, want 0", root.ParentID)
	}

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("completed spans = %d, want 5", len(spans))
	}
	// Completion order: grand, sibling, child, after, root.
	if spans[len(spans)-1] != root {
		t.Error("root must complete last")
	}
	if root.Duration < child.Duration {
		t.Error("root must last at least as long as its child")
	}
}

func TestSpanExplicitChildAndDoubleEnd(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("root")
	c := root.StartChild("worker", L("i", "0"))
	if c.ParentID != root.ID {
		t.Fatalf("explicit child parent = %d, want %d", c.ParentID, root.ID)
	}
	d1 := c.End()
	d2 := c.End() // second End must be a no-op returning the same duration
	if d1 != d2 {
		t.Errorf("double End changed duration: %v != %v", d1, d2)
	}
	root.End()
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("spans = %d, want 2 (double End must not re-record)", got)
	}
}

// TestScopeNesting checks a Scope reproduces the implicit stack's
// nesting behaviour without ever touching the tracer's current span.
func TestScopeNesting(t *testing.T) {
	tr := NewTracer(64)
	outer := tr.Start("outer") // implicit stack, must stay untouched

	sc := tr.NewScope(nil)
	root := sc.Start("pipeline")
	child := sc.Start("lookup")
	grand := sc.Start("hop")
	grand.End()
	sibling := sc.Start("hop")
	sibling.End()
	child.End()
	after := sc.Start("submit")
	after.End()
	root.End()

	if root.ParentID != 0 {
		t.Errorf("scope root parent = %d, want 0 (scopes must ignore the implicit stack)", root.ParentID)
	}
	if child.ParentID != root.ID || grand.ParentID != child.ID ||
		sibling.ParentID != child.ID || after.ParentID != root.ID {
		t.Errorf("scope nesting broken: child→%d grand→%d sibling→%d after→%d",
			child.ParentID, grand.ParentID, sibling.ParentID, after.ParentID)
	}
	// The implicit stack must still see outer as current.
	implicitChild := tr.Start("implicit")
	if implicitChild.ParentID != outer.ID {
		t.Errorf("implicit span parent = %d, want outer %d", implicitChild.ParentID, outer.ID)
	}
	implicitChild.End()
	outer.End()
}

// TestScopeRooted checks a scope created off an existing root parents its
// top-level spans under it and never pops past it.
func TestScopeRooted(t *testing.T) {
	tr := NewTracer(64)
	root := tr.NewScope(nil).Start("run")
	sc := tr.NewScope(root)
	a := sc.Start("a")
	a.End()
	b := sc.Start("b")
	b.End()
	root.End()
	if a.ParentID != root.ID || b.ParentID != root.ID {
		t.Errorf("rooted scope parents = %d,%d, want %d", a.ParentID, b.ParentID, root.ID)
	}
}

// TestScopeConcurrentTrees runs several goroutines, each building its own
// explicitly-parented span tree through its own Scope against one shared
// tracer, and asserts no span ever parents into another goroutine's tree.
// Exercised under -race by scripts/check.sh.
func TestScopeConcurrentTrees(t *testing.T) {
	tr := NewTracer(4096)
	const trees = 8
	const opsPerTree = 40
	var wg sync.WaitGroup
	for g := 0; g < trees; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tag := L("tree", itoa(uint64(g)))
			sc := tr.NewScope(nil)
			root := sc.Start("root", tag)
			for i := 0; i < opsPerTree; i++ {
				op := sc.Start("op", tag)
				inner := sc.Start("inner", tag)
				inner.End()
				op.End()
			}
			root.End()
		}(g)
	}
	wg.Wait()

	spans := tr.Spans()
	if want := trees * (2*opsPerTree + 1); len(spans) != want {
		t.Fatalf("completed spans = %d, want %d", len(spans), want)
	}
	byID := make(map[uint64]*Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	treeOf := func(s *Span) string {
		for _, l := range s.Labels {
			if l.Key == "tree" {
				return l.Value
			}
		}
		t.Fatalf("span %d has no tree label", s.ID)
		return ""
	}
	for _, s := range spans {
		switch s.Name {
		case "root":
			if s.ParentID != 0 {
				t.Errorf("root of tree %s has parent %d, want 0", treeOf(s), s.ParentID)
			}
		case "op", "inner":
			parent, ok := byID[s.ParentID]
			if !ok {
				t.Errorf("span %d (%s) has unknown parent %d", s.ID, s.Name, s.ParentID)
				continue
			}
			if treeOf(parent) != treeOf(s) {
				t.Errorf("span %d leaked across trees: tree %s parented under tree %s",
					s.ID, treeOf(s), treeOf(parent))
			}
			if s.Name == "inner" && parent.Name != "op" {
				t.Errorf("inner span %d parented under %q, want op", s.ID, parent.Name)
			}
		}
	}
}

func TestNilScope(t *testing.T) {
	var tr *Tracer
	if sc := tr.NewScope(nil); sc != nil {
		t.Fatal("nil tracer must hand out a nil scope")
	}
	var sc *Scope
	s := sc.Start("x")
	if s != nil {
		t.Fatal("nil scope must return nil span")
	}
	if d := s.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring kept %d spans, want 3", len(spans))
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	// Oldest first: ids 3,4,5 survive.
	for i, want := range []uint64{3, 4, 5} {
		if spans[i].ID != want {
			t.Errorf("span %d id = %d, want %d", i, spans[i].ID, want)
		}
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	s.Label("k", "v")
	if d := s.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
	if c := s.StartChild("y"); c != nil {
		t.Error("nil span StartChild must return nil")
	}
	if tr.Spans() != nil {
		t.Error("nil tracer Spans must be nil")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("pol.submit_proof", L("olc", "7H369F4W+Q8"))
	lookup := tr.Start("pol.discover")
	lookup.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(out.TraceEvents))
	}
	// Sorted by start time: root first.
	ev0, ev1 := out.TraceEvents[0], out.TraceEvents[1]
	if ev0.Name != "pol.submit_proof" || ev1.Name != "pol.discover" {
		t.Errorf("event order: %s, %s", ev0.Name, ev1.Name)
	}
	if ev0.Ph != "X" || ev1.Ph != "X" {
		t.Error("events must be complete events (ph=X)")
	}
	if ev0.Args["olc"] != "7H369F4W+Q8" {
		t.Errorf("root label lost: %v", ev0.Args)
	}
	if ev1.Args["parent_id"] != ev0.Args["span_id"] {
		t.Errorf("child parent_id %q != root span_id %q", ev1.Args["parent_id"], ev0.Args["span_id"])
	}
	// The child must nest inside the root: ts within [root.ts, root.ts+dur].
	if ev1.Ts < ev0.Ts || ev1.Ts+ev1.Dur > ev0.Ts+ev0.Dur+1 /* µs rounding */ {
		t.Errorf("child [%v,%v] not nested in root [%v,%v]", ev1.Ts, ev1.Ts+ev1.Dur, ev0.Ts, ev0.Ts+ev0.Dur)
	}
}
