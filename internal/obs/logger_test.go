package obs

import (
	"strings"
	"testing"
)

func TestLoggerFormatAndLevels(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo)
	l.Debug("dropped", "k", 1) // below min level
	l.Info("block produced", "chain", "goerli", "number", 7)
	l.Warn("fee spike", "factor", 2.5)
	l.Error("rejected", "reason", "bad nonce")

	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (debug filtered): %q", len(lines), sb.String())
	}
	if want := `level=info msg="block produced" chain=goerli number=7`; lines[0] != want {
		t.Errorf("line 0 = %q, want %q", lines[0], want)
	}
	if want := `level=warn msg="fee spike" factor=2.5`; lines[1] != want {
		t.Errorf("line 1 = %q, want %q", lines[1], want)
	}
	if want := `level=error msg=rejected reason="bad nonce"`; lines[2] != want {
		t.Errorf("line 2 = %q, want %q", lines[2], want)
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	if l.Enabled(LevelError) {
		t.Error("nil logger must report disabled at every level")
	}
}

func TestLoggerOddKeyValues(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug)
	l.Debug("odd", "dangling")
	if !strings.Contains(sb.String(), "!MISSING_VALUE=dangling") {
		t.Errorf("odd kv list not flagged: %q", sb.String())
	}
}
