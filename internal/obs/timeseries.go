package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultSampleCapacity is the per-series ring-buffer size a Sampler
// keeps: at the polbench default 250 ms interval this is ~4 minutes of
// history per series, in bounded memory however long the soak runs.
const DefaultSampleCapacity = 1024

// SamplePoint is one sampled value of one series.
type SamplePoint struct {
	// T is the sample time in seconds since the sampler's epoch.
	T float64 `json:"t_seconds"`
	// V is the sampled value: counter count, gauge value, histogram /
	// sketch _count or _sum, or a sketch quantile.
	V float64 `json:"v"`
}

// seriesHistory is one series' bounded ring of sample points.
type seriesHistory struct {
	kind string
	pts  []SamplePoint
	next int
	full bool
}

func (h *seriesHistory) push(p SamplePoint, capacity int) {
	if len(h.pts) < capacity {
		h.pts = append(h.pts, p)
		return
	}
	h.pts[h.next] = p
	h.next = (h.next + 1) % capacity
	h.full = true
}

// ordered returns the ring oldest-first.
func (h *seriesHistory) ordered() []SamplePoint {
	if !h.full {
		return append([]SamplePoint(nil), h.pts...)
	}
	out := make([]SamplePoint, 0, len(h.pts))
	out = append(out, h.pts[h.next:]...)
	out = append(out, h.pts[:h.next]...)
	return out
}

// Sampler turns the registry's cumulative metrics into bounded
// time-series history: every Sample() snapshots the registry and appends
// one point per series — counters and gauges directly, histograms and
// sketches as their _count/_sum (plus p50/p99 for sketches) — into a
// per-series ring buffer, so a long soak keeps the last N samples of
// every series in fixed memory. Sampling can be driven explicitly (the
// soak harness ticks once per round) or on a wall-clock interval via
// Start; both may run at once, they just interleave points.
//
// A nil *Sampler is a no-op, like every other instrument.
type Sampler struct {
	mu       sync.Mutex
	reg      *Registry
	capacity int
	epoch    time.Time
	series   map[string]*seriesHistory
	samples  uint64

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over reg keeping capacity points per
// series (values below 1 select DefaultSampleCapacity).
func NewSampler(reg *Registry, capacity int) *Sampler {
	if capacity < 1 {
		capacity = DefaultSampleCapacity
	}
	return &Sampler{
		reg:      reg,
		capacity: capacity,
		epoch:    time.Now(),
		series:   make(map[string]*seriesHistory),
	}
}

// Epoch is the sampler's time zero; every SamplePoint.T is relative to
// it.
func (s *Sampler) Epoch() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.epoch
}

// idWithSuffix splices a suffix into a series id before its label set:
// `lat{chain="x"}` + `_count` -> `lat_count{chain="x"}`.
func idWithSuffix(id, suffix string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '{' {
			return id[:i] + suffix + id[i:]
		}
	}
	return id + suffix
}

// Sample takes one sample of every registry series. Safe to call
// concurrently with metric writes and with itself.
func (s *Sampler) Sample() {
	if s == nil || s.reg == nil {
		return
	}
	snap := s.reg.Snapshot() // outside the sampler lock: snapshotting is the slow part
	t := time.Since(s.epoch).Seconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples++
	for id, v := range snap.Counters {
		s.record(id, "counter", t, float64(v))
	}
	for id, v := range snap.Gauges {
		s.record(id, "gauge", t, v)
	}
	for id, h := range snap.Histograms {
		s.record(idWithSuffix(id, "_count"), "counter", t, float64(h.Count))
		s.record(idWithSuffix(id, "_sum"), "counter", t, h.Sum)
	}
	for id, sk := range snap.Sketches {
		s.record(idWithSuffix(id, "_count"), "counter", t, float64(sk.Count))
		s.record(idWithSuffix(id, "_sum"), "counter", t, sk.Sum())
		if sk.Count > 0 {
			s.record(idWithSuffix(id, "_p50"), "gauge", t, sk.Quantile(0.5))
			s.record(idWithSuffix(id, "_p99"), "gauge", t, sk.Quantile(0.99))
		}
	}
}

func (s *Sampler) record(id, kind string, t, v float64) {
	h, ok := s.series[id]
	if !ok {
		h = &seriesHistory{kind: kind}
		s.series[id] = h
	}
	h.push(SamplePoint{T: t, V: v}, s.capacity)
}

// Start begins sampling on a wall-clock interval in a background
// goroutine; Stop ends it. A second Start while running is a no-op.
func (s *Sampler) Start(interval time.Duration) {
	if s == nil || interval <= 0 {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.Sample()
			}
		}
	}()
}

// Stop ends background sampling and waits for the goroutine to exit.
// Explicit Sample() calls remain usable afterwards.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Samples reports how many Sample() passes have run.
func (s *Sampler) Samples() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// History returns the recorded points of one series, oldest first.
func (s *Sampler) History(id string) []SamplePoint {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.series[id]; ok {
		return h.ordered()
	}
	return nil
}

// SeriesIDs returns every sampled series id, sorted.
func (s *Sampler) SeriesIDs() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.series))
	for id := range s.series {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// counterDelta applies counter-reset semantics: a value that went
// backwards restarts from zero.
func counterDelta(prev, cur float64) float64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// LastDelta returns the change of one series between its two most recent
// samples and the seconds those samples span. ok is false with fewer
// than two points.
func (s *Sampler) LastDelta(id string) (delta, dt float64, ok bool) {
	return s.WindowDelta(id, 1)
}

// WindowDelta returns the change of one series across its last window
// sample intervals (clamped to the available history) and the seconds
// that window spans. Counter series apply reset semantics — an endpoint
// below the start counts from zero. ok is false with fewer than two
// points.
func (s *Sampler) WindowDelta(id string, window int) (delta, dt float64, ok bool) {
	if s == nil || window < 1 {
		return 0, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, found := s.series[id]
	if !found {
		return 0, 0, false
	}
	pts := h.ordered()
	if len(pts) < 2 {
		return 0, 0, false
	}
	fi := len(pts) - 1 - window
	if fi < 0 {
		fi = 0
	}
	first, last := pts[fi], pts[len(pts)-1]
	if h.kind == "counter" {
		return counterDelta(first.V, last.V), last.T - first.T, true
	}
	return last.V - first.V, last.T - first.T, true
}

// FamilyDelta sums WindowDelta over every series of the family (the
// metric name; label sets ignored). dt is the widest span among the
// matched series. ok is false when no matching series has two points
// yet. A window below 1 means consecutive samples.
func (s *Sampler) FamilyDelta(family string, window int) (delta, dt float64, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	if window < 1 {
		window = 1
	}
	s.mu.Lock()
	ids := make([]string, 0, 4)
	for id := range s.series {
		if familyOf(id) == family {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	for _, id := range ids {
		d, sdt, o := s.WindowDelta(id, window)
		if !o {
			continue
		}
		delta += d
		if sdt > dt {
			dt = sdt
		}
		ok = true
	}
	return delta, dt, ok
}

// LastDeltas returns the most recent k per-sample deltas of one series,
// oldest first — the flight recorder's "what changed leading up to the
// breach" view.
func (s *Sampler) LastDeltas(id string, k int) []float64 {
	if s == nil || k < 1 {
		return nil
	}
	pts := s.History(id)
	if len(pts) < 2 {
		return nil
	}
	s.mu.Lock()
	kind := ""
	if h, ok := s.series[id]; ok {
		kind = h.kind
	}
	s.mu.Unlock()
	deltas := make([]float64, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		if kind == "counter" {
			deltas = append(deltas, counterDelta(pts[i-1].V, pts[i].V))
		} else {
			deltas = append(deltas, pts[i].V-pts[i-1].V)
		}
	}
	if len(deltas) > k {
		deltas = deltas[len(deltas)-k:]
	}
	return deltas
}

// seriesJSON is one series in the /timeseries export.
type seriesJSON struct {
	ID             string        `json:"id"`
	Kind           string        `json:"kind"`
	Points         []SamplePoint `json:"points"`
	LastDelta      float64       `json:"last_delta"`
	LastRatePerSec float64       `json:"last_rate_per_sec"`
}

// timeseriesJSON is the /timeseries document.
type timeseriesJSON struct {
	Epoch    string       `json:"epoch"`
	Samples  uint64       `json:"samples"`
	Capacity int          `json:"capacity"`
	Series   []seriesJSON `json:"series"`
}

// WriteJSON renders every series' history, deltas and rates as JSON,
// sorted by series id.
func (s *Sampler) WriteJSON(w io.Writer) error {
	doc := timeseriesJSON{Series: []seriesJSON{}}
	if s != nil {
		s.mu.Lock()
		doc.Epoch = s.epoch.Format(time.RFC3339Nano)
		doc.Samples = s.samples
		doc.Capacity = s.capacity
		s.mu.Unlock()
		for _, id := range s.SeriesIDs() {
			s.mu.Lock()
			kind := s.series[id].kind
			s.mu.Unlock()
			sj := seriesJSON{ID: id, Kind: kind, Points: s.History(id)}
			if d, dt, ok := s.LastDelta(id); ok {
				sj.LastDelta = d
				if dt > 0 {
					sj.LastRatePerSec = d / dt
				}
			}
			doc.Series = append(doc.Series, sj)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
