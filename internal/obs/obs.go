// Package obs is the zero-dependency observability substrate: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus-style text exposition and a snapshot/diff
// API, lightweight span tracing with a ring-buffer recorder and a
// chrome://tracing JSON exporter, a pluggable leveled key=value logger,
// and a per-opcode VM profiler hook.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Span, *Tracer or *Logger are no-ops, so instrumented code
// pays only a nil check (or nothing at all) when observability is off.
// That keeps the hot paths of the VMs and chain simulators unaffected by
// default — benchmarks run against the exact same code whether or not a
// registry is attached.
package obs

// Label is one key=value dimension of a metric or span.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefaultTraceCapacity is the ring-buffer size of Tracer spans kept by
// New.
const DefaultTraceCapacity = 16384

// Obs bundles one observability session: a registry, a tracer, a logger
// (nil = no-op) and the per-VM opcode profiles. A nil *Obs means
// "uninstrumented" throughout the repo.
type Obs struct {
	Registry   *Registry
	Tracer     *Tracer
	Logger     *Logger
	EVMProfile *OpcodeProfile
	AVMProfile *OpcodeProfile
}

// New creates a fully wired observability session with a no-op logger.
func New() *Obs {
	return &Obs{
		Registry:   NewRegistry(),
		Tracer:     NewTracer(DefaultTraceCapacity),
		EVMProfile: NewOpcodeProfile(),
		AVMProfile: NewOpcodeProfile(),
	}
}

// ExportProfiles flushes the opcode profiles into the registry so a
// single text dump carries the per-opcode gas/budget attribution.
func (o *Obs) ExportProfiles() {
	if o == nil {
		return
	}
	o.EVMProfile.Export(o.Registry, "evm", "gas")
	o.AVMProfile.Export(o.Registry, "avm", "budget")
}
