package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestOpcodeProfileAccumulates(t *testing.T) {
	p := NewOpcodeProfile()
	p.Op("SSTORE", 20000)
	p.Op("SSTORE", 2900)
	p.Op("ADD", 3)
	snap := p.Snapshot()
	if st := snap["SSTORE"]; st.Count != 2 || st.Cost != 22900 {
		t.Errorf("SSTORE = %+v, want {2 22900}", st)
	}
	if st := snap["ADD"]; st.Count != 1 || st.Cost != 3 {
		t.Errorf("ADD = %+v, want {1 3}", st)
	}
}

func TestOpcodeProfileExportIncremental(t *testing.T) {
	p := NewOpcodeProfile()
	r := NewRegistry()
	p.Op("ADD", 3)
	p.Export(r, "evm", "gas")
	p.Export(r, "evm", "gas") // second export of same data must not double-count
	if got := r.Counter("evm_opcode_executions_total", L("op", "ADD")).Value(); got != 1 {
		t.Errorf("executions after re-export = %d, want 1", got)
	}
	if got := r.Counter("evm_opcode_gas_total", L("op", "ADD")).Value(); got != 3 {
		t.Errorf("gas after re-export = %d, want 3", got)
	}
	p.Op("ADD", 3)
	p.Export(r, "evm", "gas")
	if got := r.Counter("evm_opcode_gas_total", L("op", "ADD")).Value(); got != 6 {
		t.Errorf("gas after incremental export = %d, want 6", got)
	}
	if !strings.Contains(r.Text(), `evm_opcode_gas_total{op="ADD"} 6`) {
		t.Errorf("exposition missing opcode gas attribution:\n%s", r.Text())
	}
}

func TestNilProfileIsNoOp(t *testing.T) {
	var p *OpcodeProfile
	p.Op("ADD", 1) // must not panic
	if len(p.Snapshot()) != 0 {
		t.Error("nil profile snapshot must be empty")
	}
	p.Export(NewRegistry(), "evm", "gas")
}

func TestOpcodeProfileConcurrency(t *testing.T) {
	p := NewOpcodeProfile()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Op("MUL", 5)
			}
		}()
	}
	wg.Wait()
	if st := p.Snapshot()["MUL"]; st.Count != 8000 || st.Cost != 40000 {
		t.Errorf("MUL = %+v, want {8000 40000}", st)
	}
}
