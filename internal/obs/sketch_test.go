package obs

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestSketchQuantileAccuracy(t *testing.T) {
	s := NewQuantileSketch()
	// 1..10000 milliseconds: the q-quantile of the uniform grid is ~10·q
	// seconds, and the sketch must land within SketchAlpha relative error.
	n := 10000
	for i := 1; i <= n; i++ {
		s.Observe(float64(i) / 1000)
	}
	if got := s.Count(); got != uint64(n) {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	snap := s.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := float64(int(math.Ceil(q*float64(n)))) / 1000
		got := snap.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 2*SketchAlpha {
			t.Errorf("Quantile(%v) = %v, want %v ± %v%%", q, got, want, 200*SketchAlpha)
		}
	}
	if got := snap.Quantile(0); got != 0.001 {
		t.Errorf("Quantile(0) = %v, want exact min 0.001", got)
	}
	if got := snap.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want exact max 10", got)
	}
	if sum := snap.Sum(); math.Abs(sum-50005) > 1e-3 {
		t.Errorf("Sum = %v, want 50005", sum)
	}
}

func TestSketchEmptyAndDegenerateInputs(t *testing.T) {
	var nilSketch *QuantileSketch
	nilSketch.Observe(1) // must not panic
	if !math.IsNaN(nilSketch.Quantile(0.5)) {
		t.Error("nil sketch Quantile should be NaN")
	}
	s := NewQuantileSketch()
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty sketch Quantile should be NaN")
	}
	s.Observe(math.NaN())
	s.Observe(-5)
	if got := s.Count(); got != 2 {
		t.Fatalf("Count after NaN+negative = %d, want 2 (both counted as 0)", got)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %v, want 0", got)
	}
	// Out-of-range values clamp into edge buckets but keep exact extremes.
	s2 := NewQuantileSketch()
	s2.Observe(1e-9)
	s2.Observe(1e9)
	snap := s2.Snapshot()
	if snap.Min != 1e-9 || snap.Max != 1e9 {
		t.Errorf("Min/Max = %v/%v, want exact 1e-9/1e9", snap.Min, snap.Max)
	}
	if got := snap.Quantile(1); got != 1e9 {
		t.Errorf("Quantile(1) = %v, want clamped-to-max 1e9", got)
	}
}

// TestSketchMergeOrderIndependence is the acceptance check: merging the
// same set of per-shard sketches in any order must produce bit-identical
// state — counts, sum, and every queried quantile.
func TestSketchMergeOrderIndependence(t *testing.T) {
	parts := make([]*QuantileSketch, 5)
	for p := range parts {
		parts[p] = NewQuantileSketch()
		for i := 0; i < 1000; i++ {
			// Distinct deterministic streams per part.
			v := float64((i*31+p*17)%5000+1) / 100
			parts[p].Observe(v)
		}
	}
	orders := [][]int{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
	}
	snaps := make([]SketchSnapshot, len(orders))
	for oi, order := range orders {
		m := NewQuantileSketch()
		for _, p := range order {
			if err := m.Merge(parts[p]); err != nil {
				t.Fatalf("merge order %v part %d: %v", order, p, err)
			}
		}
		snaps[oi] = m.Snapshot()
	}
	for oi := 1; oi < len(snaps); oi++ {
		if !reflect.DeepEqual(snaps[0], snaps[oi]) {
			t.Fatalf("merge order %v produced different state than order %v", orders[oi], orders[0])
		}
		for _, q := range SketchQuantiles {
			a, b := snaps[0].Quantile(q), snaps[oi].Quantile(q)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Errorf("Quantile(%v) differs between merge orders: %v vs %v", q, a, b)
			}
		}
	}
	// Associativity: ((a+b)+c) == (a+(b+c)).
	ab := NewQuantileSketch()
	_ = ab.Merge(parts[0])
	_ = ab.Merge(parts[1])
	_ = ab.Merge(parts[2])
	bc := NewQuantileSketch()
	_ = bc.Merge(parts[1])
	_ = bc.Merge(parts[2])
	a2 := NewQuantileSketch()
	_ = a2.Merge(parts[0])
	_ = a2.MergeSnapshot(bc.Snapshot())
	if !reflect.DeepEqual(ab.Snapshot(), a2.Snapshot()) {
		t.Error("merge is not associative")
	}
}

func TestSketchMergeLayoutMismatch(t *testing.T) {
	s := NewQuantileSketch()
	bad := SketchSnapshot{Gamma: 2, MinIndex: 0, Counts: []uint64{1, 2}, Count: 3}
	if err := s.MergeSnapshot(bad); err == nil {
		t.Fatal("merging a different layout should error")
	}
	// An empty snapshot merges into anything (vacuously compatible).
	if err := s.MergeSnapshot(SketchSnapshot{}); err != nil {
		t.Fatalf("merging an empty snapshot: %v", err)
	}
}

// TestSketchConcurrentObserveSnapshot exercises Observe racing Snapshot,
// Quantile and Merge under -race.
func TestSketchConcurrentObserveSnapshot(t *testing.T) {
	s := NewQuantileSketch()
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Observe(float64(w*perWriter+i%997) / 1000)
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			m := NewQuantileSketch()
			for {
				select {
				case <-stop:
					return
				default:
					snap := s.Snapshot()
					_ = snap.Quantile(0.99)
					_ = m.MergeSnapshot(snap)
					_ = s.Quantile(0.5)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := s.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d: lost observations under contention", got, writers*perWriter)
	}
}

func TestPercentileName(t *testing.T) {
	for q, want := range map[float64]string{0.5: "p50", 0.9: "p90", 0.99: "p99", 0.999: "p999"} {
		if got := percentileName(q); got != want {
			t.Errorf("percentileName(%v) = %q, want %q", q, got, want)
		}
	}
}
