package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// RuleKind selects how an SLO rule evaluates.
type RuleKind string

const (
	// RuleRateMin breaches when the per-second rate of a counter family
	// (summed across label sets, between the last two samples) falls
	// below Threshold.
	RuleRateMin RuleKind = "rate_min"
	// RuleRateMax breaches when that rate exceeds Threshold.
	RuleRateMax RuleKind = "rate_max"
	// RuleGaugeMax breaches when any gauge of the family exceeds
	// Threshold at the latest sample.
	RuleGaugeMax RuleKind = "gauge_max"
	// RuleQuantileMax breaches when the Quantile of the family's merged
	// quantile sketches exceeds Threshold (seconds).
	RuleQuantileMax RuleKind = "quantile_max"
	// RuleRatioMin breaches when the cumulative ratio
	// sum(Series)/sum(Denominator) falls below Threshold; it only
	// evaluates once the denominator is non-zero.
	RuleRatioMin RuleKind = "ratio_min"
)

// Rule is one SLO bound evaluated against the sampler and registry after
// every sample — a throughput floor, a tail-latency ceiling, a
// rejection-rate or fault-recovery bound.
type Rule struct {
	Name string   `json:"name"`
	Kind RuleKind `json:"kind"`
	// Series is the metric family the rule watches (label sets are
	// aggregated). For RuleRatioMin it is the numerator.
	Series      string  `json:"series"`
	Denominator string  `json:"denominator,omitempty"`
	Quantile    float64 `json:"quantile,omitempty"`
	Threshold   float64 `json:"threshold"`
	// Grace is how many samples must have been taken before the rule
	// evaluates — it keeps cold-start transients from tripping SLOs.
	Grace uint64 `json:"grace_samples,omitempty"`
	// Window is how many sample intervals rate rules compute their rate
	// across (0 means consecutive samples). A windowed floor tolerates a
	// single idle sample — one empty block under a base-fee spike, the
	// final post-drain sample — while still catching a genuine flatline.
	Window uint64 `json:"window_samples,omitempty"`
}

// Evaluation is one rule's latest verdict.
type Evaluation struct {
	Rule Rule `json:"rule"`
	// Evaluated is false while the rule lacks data (grace window, no
	// matching series, empty denominator).
	Evaluated bool    `json:"evaluated"`
	Value     float64 `json:"value"`
	Breached  bool    `json:"breached"`
}

// SpanRecord is one recent span in an anomaly bundle.
type SpanRecord struct {
	Name         string  `json:"name"`
	StartSeconds float64 `json:"start_seconds"`
	DurSeconds   float64 `json:"dur_seconds"`
	Labels       []Label `json:"labels,omitempty"`
}

// Anomaly is one SLO breach plus the flight-recorder bundle captured at
// breach time: the breaching series' recent deltas, the merged quantile
// state of every sketch family, the tracer's most recent spans and a
// full goroutine dump.
type Anomaly struct {
	Sample    uint64  `json:"sample"`
	Time      string  `json:"time"`
	Rule      Rule    `json:"rule"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Deltas maps the breaching family's series ids to their last-K
	// per-sample deltas, oldest first.
	Deltas map[string][]float64 `json:"recent_deltas,omitempty"`
	// Quantiles maps each sketch family to its merged p50/p90/p99/p999.
	Quantiles map[string]map[string]float64 `json:"quantiles,omitempty"`
	Spans     []SpanRecord                  `json:"recent_spans,omitempty"`
	// Goroutines is a full runtime stack dump, captured only for the
	// first few anomalies (they are large).
	Goroutines string `json:"goroutines,omitempty"`
}

// HealthReport is the flight recorder's serialized state — written to
// HEALTH_report.json by polbench and gated by benchgate -kind health.
type HealthReport struct {
	Healthy       bool         `json:"healthy"`
	Samples       uint64       `json:"samples"`
	TotalBreaches uint64       `json:"total_breaches"`
	Rules         []Evaluation `json:"rules"`
	// AnomaliesDropped counts breaches beyond the bundle cap; their
	// rule/value still show in Rules and TotalBreaches.
	AnomaliesDropped uint64    `json:"anomalies_dropped"`
	Anomalies        []Anomaly `json:"anomalies"`
}

// flight-recorder bundle bounds.
const (
	maxAnomalies      = 8  // full bundles kept per run
	maxGoroutineDumps = 2  // goroutine dumps are ~100KB each
	recorderDeltaK    = 16 // last-K deltas per breaching series
	recorderSpanK     = 32 // recent spans per bundle
)

// HealthMonitor evaluates SLO rules against a sampler and its registry
// and acts as the anomaly flight recorder: a breach flips the health
// verdict (stickily — /health stays red so a 3 a.m. stall in round 200
// of 1000 is still visible at round 1000), increments the
// obs_slo_breaches_total counter, and captures a diagnostic bundle. A
// nil *HealthMonitor is a no-op.
type HealthMonitor struct {
	mu      sync.Mutex
	o       *Obs
	sampler *Sampler
	rules   []Rule

	evals     []Evaluation
	breaches  uint64
	dropped   uint64
	dumps     int
	anomalies []Anomaly
}

// NewHealthMonitor builds a monitor over the bundle's registry/tracer
// and the sampler. The per-rule breach counters are registered up front
// so the exposition shows zeros for healthy rules.
func NewHealthMonitor(o *Obs, sampler *Sampler, rules []Rule) *HealthMonitor {
	m := &HealthMonitor{o: o, sampler: sampler, rules: rules}
	if o != nil && o.Registry != nil {
		for _, r := range rules {
			o.Registry.Counter("obs_slo_breaches_total", L("rule", r.Name))
		}
		o.Registry.Help("obs_slo_breaches_total", "SLO rule breaches recorded by the health monitor, per rule.")
	}
	return m
}

// Rules returns the configured rules.
func (m *HealthMonitor) Rules() []Rule {
	if m == nil {
		return nil
	}
	return append([]Rule(nil), m.rules...)
}

// Healthy reports whether no rule has ever breached. The verdict is
// sticky by design: the flight recorder's job is to make a transient
// mid-soak anomaly visible after the fact.
func (m *HealthMonitor) Healthy() bool {
	if m == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.breaches == 0
}

// Breaches reports the total breach count.
func (m *HealthMonitor) Breaches() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.breaches
}

// Evaluate runs every rule against the current sampler/registry state,
// records anomalies for breaches, and returns the evaluations. Callers
// normally reach it through Telemetry.Tick, which samples first.
func (m *HealthMonitor) Evaluate() []Evaluation {
	if m == nil {
		return nil
	}
	samples := m.sampler.Samples()
	var reg *Registry
	if m.o != nil {
		reg = m.o.Registry
	}
	evals := make([]Evaluation, 0, len(m.rules))
	for _, r := range m.rules {
		ev := Evaluation{Rule: r}
		if samples > r.Grace {
			ev.Evaluated, ev.Value, ev.Breached = m.check(r, reg)
		}
		evals = append(evals, ev)
		if ev.Breached {
			m.recordBreach(ev, samples)
		}
	}
	m.mu.Lock()
	m.evals = evals
	m.mu.Unlock()
	return evals
}

// check evaluates one rule; breached is meaningful only when evaluated.
func (m *HealthMonitor) check(r Rule, reg *Registry) (evaluated bool, value float64, breached bool) {
	switch r.Kind {
	case RuleRateMin, RuleRateMax:
		delta, dt, ok := m.sampler.FamilyDelta(r.Series, int(r.Window))
		if !ok || dt <= 0 {
			return false, 0, false
		}
		rate := delta / dt
		if r.Kind == RuleRateMin {
			return true, rate, rate < r.Threshold
		}
		return true, rate, rate > r.Threshold
	case RuleGaugeMax:
		if reg == nil {
			return false, 0, false
		}
		snap := reg.Snapshot()
		found := false
		maxV := 0.0
		for id, v := range snap.Gauges {
			if familyOf(id) == r.Series {
				if !found || v > maxV {
					maxV = v
				}
				found = true
			}
		}
		if !found {
			return false, 0, false
		}
		return true, maxV, maxV > r.Threshold
	case RuleQuantileMax:
		if reg == nil {
			return false, 0, false
		}
		merged, ok := reg.MergedSketch(r.Series)
		if !ok || merged.Count == 0 {
			return false, 0, false
		}
		v := merged.Quantile(r.Quantile)
		return true, v, v > r.Threshold
	case RuleRatioMin:
		if reg == nil {
			return false, 0, false
		}
		snap := reg.Snapshot()
		var num, den uint64
		for id, v := range snap.Counters {
			switch familyOf(id) {
			case r.Series:
				num += v
			case r.Denominator:
				den += v
			}
		}
		if den == 0 {
			return false, 0, false
		}
		ratio := float64(num) / float64(den)
		return true, ratio, ratio < r.Threshold
	}
	return false, 0, false
}

// recordBreach counts the breach and captures the flight-recorder
// bundle, bounded to maxAnomalies full bundles per run.
func (m *HealthMonitor) recordBreach(ev Evaluation, sample uint64) {
	if m.o != nil && m.o.Registry != nil {
		m.o.Registry.Counter("obs_slo_breaches_total", L("rule", ev.Rule.Name)).Inc()
	}
	m.mu.Lock()
	m.breaches++
	if len(m.anomalies) >= maxAnomalies {
		m.dropped++
		m.mu.Unlock()
		return
	}
	withDump := m.dumps < maxGoroutineDumps
	if withDump {
		m.dumps++
	}
	m.mu.Unlock()

	a := Anomaly{
		Sample:    sample,
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Rule:      ev.Rule,
		Value:     ev.Value,
		Threshold: ev.Rule.Threshold,
		Deltas:    make(map[string][]float64),
		Quantiles: make(map[string]map[string]float64),
	}
	for _, id := range m.sampler.SeriesIDs() {
		if familyOf(id) != ev.Rule.Series && familyOf(id) != ev.Rule.Denominator {
			continue
		}
		if ds := m.sampler.LastDeltas(id, recorderDeltaK); len(ds) > 0 {
			a.Deltas[id] = ds
		}
	}
	if m.o != nil && m.o.Registry != nil {
		snap := m.o.Registry.Snapshot()
		families := make(map[string]bool)
		for id := range snap.Sketches {
			families[familyOf(id)] = true
		}
		for fam := range families {
			if merged, ok := m.o.Registry.MergedSketch(fam); ok && merged.Count > 0 {
				qs := make(map[string]float64, len(SketchQuantiles))
				for _, q := range SketchQuantiles {
					qs[percentileName(q)] = merged.Quantile(q)
				}
				a.Quantiles[fam] = qs
			}
		}
	}
	if m.o != nil && m.o.Tracer != nil {
		spans := m.o.Tracer.Spans()
		if len(spans) > recorderSpanK {
			spans = spans[len(spans)-recorderSpanK:]
		}
		for _, sp := range spans {
			a.Spans = append(a.Spans, SpanRecord{
				Name:         sp.Name,
				StartSeconds: sp.Start.Seconds(),
				DurSeconds:   sp.Duration.Seconds(),
				Labels:       sp.Labels,
			})
		}
	}
	if withDump {
		buf := make([]byte, 1<<20)
		a.Goroutines = string(buf[:runtime.Stack(buf, true)])
	}
	m.mu.Lock()
	m.anomalies = append(m.anomalies, a)
	m.mu.Unlock()
}

// Report assembles the flight recorder's current state.
func (m *HealthMonitor) Report() *HealthReport {
	if m == nil {
		return &HealthReport{Healthy: true, Rules: []Evaluation{}, Anomalies: []Anomaly{}}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := &HealthReport{
		Healthy:          m.breaches == 0,
		Samples:          m.sampler.Samples(),
		TotalBreaches:    m.breaches,
		Rules:            append([]Evaluation{}, m.evals...),
		AnomaliesDropped: m.dropped,
		Anomalies:        append([]Anomaly{}, m.anomalies...),
	}
	if rep.Rules == nil {
		rep.Rules = []Evaluation{}
	}
	return rep
}

// WriteReport serializes Report as indented JSON.
func (m *HealthMonitor) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Report())
}

// WriteReportFile writes the report to path.
func (m *HealthMonitor) WriteReportFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteReport(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Telemetry bundles one live-telemetry session: the obs bundle its
// metrics come from, the sampler that turns them into time series, and
// the health monitor watching the samples. Harnesses thread a *Telemetry
// through their specs and call Tick at natural boundaries (a soak round,
// a completed matrix run); nil disables everything, like a nil *Obs.
type Telemetry struct {
	Obs     *Obs
	Sampler *Sampler
	Health  *HealthMonitor
}

// NewTelemetry wires a sampler (capacity points per series; below 1
// selects DefaultSampleCapacity) and a health monitor with the given SLO
// rules over o's registry.
func NewTelemetry(o *Obs, capacity int, rules []Rule) *Telemetry {
	var reg *Registry
	if o != nil {
		reg = o.Registry
	}
	sampler := NewSampler(reg, capacity)
	return &Telemetry{
		Obs:     o,
		Sampler: sampler,
		Health:  NewHealthMonitor(o, sampler, rules),
	}
}

// Tick takes one sample and evaluates the SLO rules — the per-round hook
// the sim harnesses call. Nil-safe.
func (t *Telemetry) Tick() {
	if t == nil {
		return
	}
	t.Sampler.Sample()
	t.Health.Evaluate()
}

// percentileName renders 0.5 -> "p50", 0.99 -> "p99", 0.999 -> "p999".
func percentileName(q float64) string {
	s := quantileLabel(q)
	if len(s) > 2 && s[:2] == "0." {
		s = s[2:]
	}
	if len(s) == 1 {
		s += "0"
	}
	return "p" + s
}
