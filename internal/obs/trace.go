package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one timed region of the pipeline. Spans form a tree through
// ParentID; a nil *Span is a no-op, so callers never check whether
// tracing is enabled.
type Span struct {
	ID       uint64
	ParentID uint64 // 0 for roots
	Name     string
	Labels   []Label
	// Start and Duration are offsets from the tracer's creation, wall
	// clock.
	Start    time.Duration
	Duration time.Duration

	t      *Tracer
	parent *Span
	scope  *Scope // non-nil when the span was opened through a Scope
	ended  bool
}

// Tracer records spans into a fixed-capacity ring buffer: when full, the
// oldest completed spans are overwritten (and counted as dropped).
//
// Start/End maintain an implicit current-span stack, so simple sequential
// code gets parent/child nesting for free: a Start between another span's
// Start and End becomes its child. That stack is process-wide, so code
// that may run concurrently — the PoL pipeline under sim.RunMatrix —
// must parent explicitly instead: per-strand stacks via NewScope, or
// one-off children via Span.StartChild.
type Tracer struct {
	mu       sync.Mutex
	capacity int
	epoch    time.Time
	seq      uint64
	cur      *Span
	done     []*Span
	next     int
	wrapped  bool
	dropped  uint64
}

// NewTracer creates a tracer keeping at most capacity completed spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity, epoch: time.Now()}
}

// Start opens a span as a child of the current span (or as a root) and
// makes it current. Nil tracers return a nil (no-op) span.
func (t *Tracer) Start(name string, labels ...Label) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	s := &Span{
		ID:     t.seq,
		Name:   name,
		Labels: labels,
		Start:  time.Since(t.epoch),
		t:      t,
		parent: t.cur,
	}
	if t.cur != nil {
		s.ParentID = t.cur.ID
	}
	t.cur = s
	return s
}

// Scope is an explicit current-span stack for one logical execution
// strand (one experiment run, one goroutine). The tracer's implicit stack
// is process-wide, so two concurrent strands pushing through it mis-parent
// each other's spans by design; a Scope carries its own stack instead, and
// any number of scopes can record into the same tracer at once with every
// span tree staying correctly nested. A nil *Scope is a no-op, like every
// other instrument.
type Scope struct {
	t   *Tracer
	cur *Span
}

// NewScope creates an explicit span stack recording into t. A non-nil
// root becomes the parent of the scope's top-level spans (the stack never
// pops past it); a nil root makes them trace roots.
func (t *Tracer) NewScope(root *Span) *Scope {
	if t == nil {
		return nil
	}
	return &Scope{t: t, cur: root}
}

// Start opens a span as a child of the scope's current span and makes it
// the scope's current. Unlike Tracer.Start it never reads or writes the
// tracer's implicit stack, so concurrent scopes cannot mis-parent.
func (sc *Scope) Start(name string, labels ...Label) *Span {
	if sc == nil || sc.t == nil {
		return nil
	}
	t := sc.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	s := &Span{
		ID:     t.seq,
		Name:   name,
		Labels: labels,
		Start:  time.Since(t.epoch),
		t:      t,
		parent: sc.cur,
		scope:  sc,
	}
	if sc.cur != nil {
		s.ParentID = sc.cur.ID
	}
	sc.cur = s
	return s
}

// StartChild opens a span explicitly parented to s, without touching the
// tracer's current-span stack — safe from other goroutines.
func (s *Span) StartChild(name string, labels ...Label) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return &Span{
		ID:       t.seq,
		ParentID: s.ID,
		Name:     name,
		Labels:   labels,
		Start:    time.Since(t.epoch),
		t:        t,
		parent:   s,
	}
}

// Label attaches one more key=value to the span.
func (s *Span) Label(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.Labels = append(s.Labels, L(key, value))
	s.t.mu.Unlock()
}

// End closes the span, records it into the ring buffer and restores the
// span's parent as current. It returns the span's duration (0 on nil),
// so call sites can feed the same measurement into a histogram.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return s.Duration
	}
	s.ended = true
	s.Duration = time.Since(t.epoch) - s.Start
	if t.cur == s {
		t.cur = s.parent
	}
	if s.scope != nil && s.scope.cur == s {
		s.scope.cur = s.parent
	}
	if len(t.done) < t.capacity {
		t.done = append(t.done, s)
	} else {
		t.done[t.next] = s
		t.next = (t.next + 1) % t.capacity
		t.wrapped = true
		t.dropped++
	}
	return s.Duration
}

// Spans returns the completed spans, oldest first.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]*Span(nil), t.done...)
	}
	out := make([]*Span, 0, len(t.done))
	out = append(out, t.done[t.next:]...)
	out = append(out, t.done[:t.next]...)
	return out
}

// Dropped reports how many completed spans were overwritten by the ring
// buffer.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one entry of the chrome://tracing "trace event" format
// (complete event, ph="X", microsecond timestamps).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorded spans as chrome://tracing (or
// Perfetto) compatible JSON. Parent/child nesting is expressed both by
// timestamp containment on the shared thread lane and by explicit
// span/parent ids in each event's args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	trace := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		args := make(map[string]string, len(s.Labels)+2)
		args["span_id"] = itoa(s.ID)
		if s.ParentID != 0 {
			args["parent_id"] = itoa(s.ParentID)
		}
		for _, l := range s.Labels {
			args[l.Key] = l.Value
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }
