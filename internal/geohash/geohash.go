// Package geohash implements the Geohash location encoding (§1.3.1) and
// FOAM-style Crypto-Spatial Coordinates (§1.7.1): deriving a deterministic
// smart-contract address for any physical location.
//
// The paper compares Geohash with Open Location Code and picks OLC; this
// package exists so the comparison is executable — including Geohash's
// documented disadvantage that one location can be covered by multiple
// codes of different lengths ("c216ne4" and "c216new" both decode to the
// same coordinates).
package geohash

import (
	"errors"
	"fmt"
	"strings"

	"agnopol/internal/chain"
	"agnopol/internal/polcrypto"
)

// Alphabet is the base-32 Geohash digit set (0-9 and a-z excluding a, i,
// l, o).
const Alphabet = "0123456789bcdefghjkmnpqrstuvwxyz"

var digitValue = func() map[byte]int {
	m := make(map[byte]int, len(Alphabet))
	for i := 0; i < len(Alphabet); i++ {
		m[Alphabet[i]] = i
	}
	return m
}()

// Box is the cell a geohash designates.
type Box struct {
	MinLat, MaxLat float64
	MinLng, MaxLng float64
}

// Center returns the midpoint of the box.
func (b Box) Center() (lat, lng float64) {
	return (b.MinLat + b.MaxLat) / 2, (b.MinLng + b.MaxLng) / 2
}

// Contains reports whether a coordinate is inside the box.
func (b Box) Contains(lat, lng float64) bool {
	return lat >= b.MinLat && lat <= b.MaxLat && lng >= b.MinLng && lng <= b.MaxLng
}

// Encode produces a geohash of the given precision (characters). Bits
// alternate longitude/latitude starting with longitude, 5 bits per
// character.
func Encode(lat, lng float64, precision int) (string, error) {
	if precision < 1 || precision > 22 {
		return "", fmt.Errorf("geohash: precision %d out of range (1..22)", precision)
	}
	if lat < -90 || lat > 90 || lng < -180 || lng > 180 {
		return "", fmt.Errorf("geohash: coordinates (%v,%v) out of range", lat, lng)
	}
	var sb strings.Builder
	latLo, latHi := -90.0, 90.0
	lngLo, lngHi := -180.0, 180.0
	even := true // longitude bit next
	bit, idx := 0, 0
	for sb.Len() < precision {
		if even {
			mid := (lngLo + lngHi) / 2
			if lng >= mid {
				idx = idx<<1 | 1
				lngLo = mid
			} else {
				idx <<= 1
				lngHi = mid
			}
		} else {
			mid := (latLo + latHi) / 2
			if lat >= mid {
				idx = idx<<1 | 1
				latLo = mid
			} else {
				idx <<= 1
				latHi = mid
			}
		}
		even = !even
		bit++
		if bit == 5 {
			sb.WriteByte(Alphabet[idx])
			bit, idx = 0, 0
		}
	}
	return sb.String(), nil
}

// ErrInvalid reports a malformed geohash.
var ErrInvalid = errors.New("geohash: invalid code")

// Decode returns the bounding box of a geohash.
func Decode(code string) (Box, error) {
	if code == "" {
		return Box{}, fmt.Errorf("%w: empty", ErrInvalid)
	}
	b := Box{MinLat: -90, MaxLat: 90, MinLng: -180, MaxLng: 180}
	even := true
	for i := 0; i < len(code); i++ {
		d, ok := digitValue[lower(code[i])]
		if !ok {
			return Box{}, fmt.Errorf("%w: character %q", ErrInvalid, code[i])
		}
		for mask := 16; mask > 0; mask >>= 1 {
			if even {
				mid := (b.MinLng + b.MaxLng) / 2
				if d&mask != 0 {
					b.MinLng = mid
				} else {
					b.MaxLng = mid
				}
			} else {
				mid := (b.MinLat + b.MaxLat) / 2
				if d&mask != 0 {
					b.MinLat = mid
				} else {
					b.MaxLat = mid
				}
			}
			even = !even
		}
	}
	return b, nil
}

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c - 'A' + 'a'
	}
	return c
}

// Neighbors returns the 8 geohashes surrounding a code at the same
// precision, by decoding to the box center and re-encoding offset points —
// the zone-discovery primitive FOAM's radio anchors use.
func Neighbors(code string) ([]string, error) {
	b, err := Decode(code)
	if err != nil {
		return nil, err
	}
	cLat, cLng := b.Center()
	dLat := b.MaxLat - b.MinLat
	dLng := b.MaxLng - b.MinLng
	var out []string
	for _, dy := range []float64{-1, 0, 1} {
		for _, dx := range []float64{-1, 0, 1} {
			if dx == 0 && dy == 0 {
				continue
			}
			lat := cLat + dy*dLat
			lng := cLng + dx*dLng
			if lat > 90 || lat < -90 {
				continue
			}
			for lng > 180 {
				lng -= 360
			}
			for lng < -180 {
				lng += 360
			}
			n, err := Encode(lat, lng, len(code))
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		}
	}
	return out, nil
}

// CSC is a FOAM-style Crypto-Spatial Coordinate: the deterministic contract
// address bound to a geohash cell, "accessible for decentralized
// applications" (§1.7.1). The address is derived from the geohash alone, so
// every participant computes the same one.
type CSC struct {
	Geohash string
	Address chain.Address
}

// ToCSC derives the Crypto-Spatial Coordinate of a location at the given
// geohash precision.
func ToCSC(lat, lng float64, precision int) (CSC, error) {
	gh, err := Encode(lat, lng, precision)
	if err != nil {
		return CSC{}, err
	}
	h := polcrypto.Hash([]byte("csc:" + gh))
	return CSC{Geohash: gh, Address: chain.AddressFromBytes(h[:])}, nil
}
