package geohash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeKnownVectors(t *testing.T) {
	cases := []struct {
		lat, lng  float64
		precision int
		want      string
	}{
		// Classic reference points.
		{57.64911, 10.40744, 11, "u4pruydqqvj"},
		{42.6, -5.6, 5, "ezs42"},
		{-25.382708, -49.265506, 8, "6gkzwgjz"},
		{0, 0, 5, "s0000"},
	}
	for _, c := range cases {
		got, err := Encode(c.lat, c.lng, c.precision)
		if err != nil {
			t.Errorf("Encode(%v,%v,%d): %v", c.lat, c.lng, c.precision, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%v,%v,%d) = %q, want %q", c.lat, c.lng, c.precision, got, c.want)
		}
	}
}

func TestDecodeContains(t *testing.T) {
	err := quick.Check(func(latRaw, lngRaw float64, pRaw uint8) bool {
		lat := math.Mod(math.Abs(latRaw), 180) - 90
		lng := math.Mod(math.Abs(lngRaw), 360) - 180
		if math.IsNaN(lat) || math.IsNaN(lng) {
			return true
		}
		p := int(pRaw)%10 + 1
		code, err := Encode(lat, lng, p)
		if err != nil {
			return false
		}
		box, err := Decode(code)
		if err != nil {
			return false
		}
		return box.Contains(lat, lng)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	for _, bad := range []string{"", "ezs4a", "hello world", "ü"} {
		if _, err := Decode(bad); err == nil {
			t.Errorf("Decode(%q) accepted", bad)
		}
	}
}

// TestMultipleCodesSameLocation reproduces the disadvantage the paper cites
// for Geohash (§1.3.1): a single location is covered by several codes —
// every prefix of a geohash also contains the point, and at a fixed
// precision, points near a cell border have neighbours whose center rounds
// to the same displayed coordinates.
func TestMultipleCodesSameLocation(t *testing.T) {
	lat, lng := 45.37, -121.7
	long, err := Encode(lat, lng, 7)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 7; p++ {
		prefix := long[:p]
		box, err := Decode(prefix)
		if err != nil {
			t.Fatal(err)
		}
		if !box.Contains(lat, lng) {
			t.Fatalf("prefix %q does not contain the point", prefix)
		}
	}
}

func TestPrecisionShrinksCell(t *testing.T) {
	lat, lng := 44.4949, 11.3426
	prev := math.Inf(1)
	for p := 1; p <= 10; p++ {
		code, err := Encode(lat, lng, p)
		if err != nil {
			t.Fatal(err)
		}
		box, err := Decode(code)
		if err != nil {
			t.Fatal(err)
		}
		size := (box.MaxLat - box.MinLat) * (box.MaxLng - box.MinLng)
		if size >= prev {
			t.Fatalf("precision %d cell %g not smaller than %g", p, size, prev)
		}
		prev = size
	}
}

func TestNeighbors(t *testing.T) {
	ns, err := Neighbors("u4pru")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 8 {
		t.Fatalf("neighbors = %d, want 8", len(ns))
	}
	seen := map[string]bool{"u4pru": true}
	for _, n := range ns {
		if seen[n] {
			t.Fatalf("duplicate/self neighbor %q", n)
		}
		seen[n] = true
		if len(n) != 5 {
			t.Fatalf("neighbor %q has wrong precision", n)
		}
	}
}

func TestCSCDeterministic(t *testing.T) {
	a, err := ToCSC(44.4949, 11.3426, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ToCSC(44.4949, 11.3426, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("CSC not deterministic")
	}
	// A different cell gets a different contract address.
	c, err := ToCSC(45.4642, 9.19, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Address == a.Address {
		t.Fatal("distinct cells share a CSC address")
	}
	// Every device in the same cell computes the same address.
	d, err := ToCSC(44.49491, 11.34261, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Address != a.Address {
		t.Fatal("same-cell points disagree on the CSC address")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(91, 0, 5); err == nil {
		t.Fatal("latitude 91 accepted")
	}
	if _, err := Encode(0, 181, 5); err == nil {
		t.Fatal("longitude 181 accepted")
	}
	if _, err := Encode(0, 0, 0); err == nil {
		t.Fatal("precision 0 accepted")
	}
	if _, err := Encode(0, 0, 23); err == nil {
		t.Fatal("precision 23 accepted")
	}
}
