package sim

import (
	"testing"
	"time"

	"agnopol/internal/obs"
)

// fig52 is the smallest full experiment (Ropsten, 8 users) — the standard
// workload for overhead measurements.
var fig52 = FigureSpecs[0]

func timeRun(tb testing.TB, o *obs.Obs) time.Duration {
	tb.Helper()
	start := time.Now()
	if _, err := RunObserved(fig52.Chain, fig52.Users, 7, o); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// TestNoOpObservabilityOverhead checks that the uninstrumented (nil-obs)
// path through the instrumented code is not slower than the fully
// instrumented one. The no-op path does strictly less work — only nil
// checks — so comparing against the instrumented run gives a stable
// direction: if the nil path ever exceeded instrumented wall time by more
// than the 5% noise allowance, the "observability off costs nothing"
// claim would be broken. Min-of-N damps scheduler noise.
func TestNoOpObservabilityOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping timing comparison in -short mode")
	}
	const rounds = 4
	minNoop, minObs := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d := timeRun(t, nil); d < minNoop {
			minNoop = d
		}
		if d := timeRun(t, obs.New()); d < minObs {
			minObs = d
		}
	}
	t.Logf("fig 5.2 wall time: no-op %v, instrumented %v", minNoop, minObs)
	if float64(minNoop) > 1.05*float64(minObs) {
		t.Errorf("no-op path took %v, more than 5%% over the instrumented %v", minNoop, minObs)
	}
}

func BenchmarkFig52(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(fig52.Chain, fig52.Users, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig52Observed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunObserved(fig52.Chain, fig52.Users, 7, obs.New()); err != nil {
			b.Fatal(err)
		}
	}
}
