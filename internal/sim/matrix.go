package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"agnopol/internal/faults"
	"agnopol/internal/obs"
	"agnopol/internal/stats"
)

// Cell is one experiment of the evaluation matrix: a network preset with
// a user count.
type Cell struct {
	Chain ChainName `json:"chain"`
	Users int       `json:"users"`
}

// TableCells returns the Table 5.1–5.4 grid: every evaluation chain at 16
// and at 32 users, in the order the tables present them.
func TableCells() []Cell {
	cells := make([]Cell, 0, 2*len(AllChains))
	for _, users := range []int{16, 32} {
		for _, c := range AllChains {
			cells = append(cells, Cell{Chain: c, Users: users})
		}
	}
	return cells
}

// MatrixSpec configures RunMatrix.
type MatrixSpec struct {
	// Cells is the (chain × users) grid; nil selects TableCells.
	Cells []Cell
	// Reps is the number of seed-varied repetitions per cell; values
	// below 1 mean a single run.
	Reps int
	// Seed is the base every per-run seed is derived from.
	Seed uint64
	// Parallel is the worker count; values below 1 select GOMAXPROCS.
	Parallel int
	// Faults optionally applies a fault plan to every run. Each run's
	// injector is seeded from that run's derived seed, so fault streams
	// are as scheduling-independent as the runs themselves.
	Faults *faults.Plan
	// Verify adds the funding + verification phase to every run. The
	// aggregates still cover only deploy/attach (matching the tables);
	// the phase matters to fault sweeps, whose report-fetch fault class
	// only fires during verification.
	Verify bool
	// Telemetry optionally attaches a live-telemetry session, ticked once
	// after every completed run so fan-outs are observable mid-flight.
	Telemetry *obs.Telemetry
}

// CellRun is one completed run of the grid.
type CellRun struct {
	Cell   Cell
	Rep    int
	Seed   uint64
	Result *Result
}

// CellSummary is one cell's cross-seed aggregate: the repetitions'
// summaries pooled (see stats.Pool) so Mean is the mean of the per-rep
// means, StdDev the pooled deviation over all samples of all reps, and
// Min/Max the envelope across reps. Fees are the mean per-rep totals in
// euro.
type CellSummary struct {
	Cell           Cell
	Reps           int
	Deploy         stats.Summary
	Attach         stats.Summary
	DeployFeesEuro float64
	AttachFeesEuro float64
}

// MatrixResult is the outcome of one matrix fan-out.
type MatrixResult struct {
	Cells    []Cell
	Reps     int
	Seed     uint64
	Parallel int
	// Runs holds every run in grid order — cell-major, a cell's
	// repetitions consecutive — regardless of which worker executed it.
	Runs []CellRun
	// Summaries holds one cross-seed aggregate per cell, in Cells order.
	Summaries []CellSummary
	// Elapsed is the wall-clock time of the whole fan-out.
	Elapsed time.Duration
}

// deriveSeed maps the base seed and a run's grid index to the run's seed
// with a splitmix64 finalizer: every run gets a decorrelated stream, and
// the derivation depends only on the grid position — never on worker
// scheduling — so the matrix is bit-for-bit reproducible at any
// parallelism.
func deriveSeed(base uint64, idx int) uint64 {
	z := base ^ (uint64(idx)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}

// RunMatrix fans the (cell × repetition) grid out over a worker pool and
// aggregates each cell's repetitions into a cross-seed summary. Every run
// builds its own chain, system and connector; the only shared state is
// the obs bundle, whose registry, profiles and tracer scopes are safe
// under concurrent writers. Results land in grid slots, so the output is
// identical whatever the interleaving.
func RunMatrix(spec MatrixSpec, o *obs.Obs) (*MatrixResult, error) {
	cells := spec.Cells
	if cells == nil {
		cells = TableCells()
	}
	reps := spec.Reps
	if reps < 1 {
		reps = 1
	}
	par := spec.Parallel
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	total := len(cells) * reps
	if par > total {
		par = total
	}

	runs := make([]CellRun, total)
	errs := make([]error, total)
	jobs := make(chan int)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				cell := cells[idx/reps]
				seed := deriveSeed(spec.Seed, idx)
				vr, err := Execute(Spec{
					Chain: cell.Chain, Users: cell.Users, Seed: seed,
					Obs: o, Faults: spec.Faults, Verify: spec.Verify,
				})
				var r *Result
				if vr != nil {
					r = vr.Result
				}
				runs[idx] = CellRun{Cell: cell, Rep: idx % reps, Seed: seed, Result: r}
				errs[idx] = err
				spec.Telemetry.Tick()
			}
		}()
	}
	for idx := 0; idx < total; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: matrix cell %s/%d users, rep %d: %w",
				cells[idx/reps].Chain, cells[idx/reps].Users, idx%reps, err)
		}
	}

	out := &MatrixResult{
		Cells: cells, Reps: reps, Seed: spec.Seed, Parallel: par,
		Runs: runs, Elapsed: time.Since(start),
	}
	out.Summaries = make([]CellSummary, 0, len(cells))
	for ci, cell := range cells {
		deploys := make([]stats.Summary, 0, reps)
		attaches := make([]stats.Summary, 0, reps)
		var deployEur, attachEur float64
		for rep := 0; rep < reps; rep++ {
			r := runs[ci*reps+rep].Result
			deploys = append(deploys, r.DeploySummary)
			attaches = append(attaches, r.AttachSummary)
			deployEur += r.DeployFees.Euros()
			attachEur += r.AttachFees.Euros()
		}
		out.Summaries = append(out.Summaries, CellSummary{
			Cell:           cell,
			Reps:           reps,
			Deploy:         stats.Pool(deploys),
			Attach:         stats.Pool(attaches),
			DeployFeesEuro: deployEur / float64(reps),
			AttachFeesEuro: attachEur / float64(reps),
		})
	}
	return out, nil
}

// String renders the cross-seed summaries as a text table.
func (m *MatrixResult) String() string {
	headers := []string{"Testnet", "Users", "Reps",
		"Deploy Mean", "Dev Std", "Min", "Max",
		"Attach Mean", "Dev Std", "Min", "Max"}
	rows := make([][]string, 0, len(m.Summaries))
	for _, s := range m.Summaries {
		rows = append(rows, []string{
			string(s.Cell.Chain), fmt.Sprint(s.Cell.Users), fmt.Sprint(s.Reps),
			stats.FormatSeconds(s.Deploy.Mean), stats.FormatSeconds(s.Deploy.StdDev),
			stats.FormatSeconds(s.Deploy.Min), stats.FormatSeconds(s.Deploy.Max),
			stats.FormatSeconds(s.Attach.Mean), stats.FormatSeconds(s.Attach.StdDev),
			stats.FormatSeconds(s.Attach.Min), stats.FormatSeconds(s.Attach.Max),
		})
	}
	return fmt.Sprintf("Cross-seed matrix — %d cells × %d reps, %d workers, %v wall\n%s",
		len(m.Cells), m.Reps, m.Parallel, m.Elapsed.Round(time.Millisecond),
		stats.Table(headers, rows))
}
