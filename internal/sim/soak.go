package sim

import (
	"fmt"
	"math/big"
	"runtime"
	"time"

	"agnopol/internal/algorand"
	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/eth"
	"agnopol/internal/lang"
	"agnopol/internal/obs"
)

// SoakSpec describes a sustained-load run: M areas × K users × T rounds of
// simulated time, executed on a chain partitioned into Shards. Every user
// checks in to their home area every round, so the workload is dominated by
// disjoint per-area contract traffic — the case the sharded block builder
// is designed to parallelize.
type SoakSpec struct {
	// Chain selects the network preset (see AllChains).
	Chain ChainName
	// Areas (M) is the number of per-area check-in contracts deployed.
	Areas int
	// Users (K) is the number of accounts issuing check-ins.
	Users int
	// Rounds (T) is how many blocks of sustained load to drive; the drain
	// phase afterwards runs until the mempool is empty.
	Rounds int
	// Shards partitions block execution; 1 is the serial baseline.
	Shards int
	// Seed drives every random stream of the run.
	Seed uint64
	// Obs optionally attaches an observability bundle.
	Obs *obs.Obs
	// Telemetry optionally attaches a live-telemetry session: the sampler
	// is ticked — one registry sample plus an SLO evaluation — after every
	// load round and once after the drain, so /metrics, /timeseries and
	// /health evolve while the soak is still running.
	Telemetry *obs.Telemetry
}

// SoakResult aggregates one soak run.
type SoakResult struct {
	Chain  ChainName
	Areas  int
	Users  int
	Rounds int
	Shards int

	// Submitted and Included count user transactions (congestion traffic
	// excluded); after a full drain they are equal.
	Submitted uint64
	Included  uint64
	// Blocks is how many blocks the run produced, drain included.
	Blocks uint64

	// Wall is the host wall-clock time of the load phase; Simulated is the
	// chain-clock time it covered.
	Wall      time.Duration
	Simulated time.Duration

	// Utilization is each shard's share of executed transactions;
	// ParallelBatches counts blocks that actually fanned out.
	Utilization     []float64
	ShardTxs        []uint64
	ParallelBatches uint64

	// Digest fingerprints the chain's end state: two runs of the same spec
	// must produce the same digest regardless of Shards or GOMAXPROCS.
	Digest chain.Hash32
	// StateRoot is the world-state Merkle root at the end of the run —
	// a pure function of the live key/value set, so runs that differ only
	// in scheduling must agree on it.
	StateRoot chain.Hash32

	// HeapBytes is the live heap after a forced GC at the end of the run;
	// BytesPerUser divides it by Users. With block retention bounded, the
	// quotient stays flat as users grow — memory tracks live state, not
	// history.
	HeapBytes    uint64
	BytesPerUser float64
}

// TxsPerSecWall is the headline throughput number: included transactions
// per host wall-clock second.
func (r *SoakResult) TxsPerSecWall() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Included) / r.Wall.Seconds()
}

// TxsPerSecSimulated is the included transactions per simulated
// chain-clock second — a property of the workload, not the host.
func (r *SoakResult) TxsPerSecSimulated() float64 {
	if r.Simulated <= 0 {
		return 0
	}
	return float64(r.Included) / r.Simulated.Seconds()
}

// soakAreaCode synthesizes the i-th area's Open Location Code-style
// identifier. Distinct codes are all the contract requires.
func soakAreaCode(i int) string { return fmt.Sprintf("7H36SOAK+%03X", i) }

// soakRetention bounds how many blocks (and their receipts) a soak chain
// keeps resident — enough for any confirmation depth, small enough that a
// million-user run's memory is set by live state, not by history.
const soakRetention = 16

// newSoakConnector builds the chain under soak. EVM presets get their
// ambient congestion traffic trimmed so the measured workload — not the
// synthetic background — fills the blocks; the congestion stream stays on,
// seeded, and deterministic. The block gas limit scales with the user
// count so a round's check-ins fit a bounded number of blocks — at the
// paper's scales (≤ a few hundred users) the preset limit already
// dominates and nothing changes.
func newSoakConnector(spec SoakSpec) (core.Connector, error) {
	trim := func(cfg eth.Config) eth.Config {
		cfg.CongestionMeanGas = 1_000_000
		cfg.SpikeProb = 0
		if scaled := uint64(spec.Users) * 200_000; scaled > cfg.BlockGasLimit {
			cfg.BlockGasLimit = scaled
		}
		return cfg
	}
	switch spec.Chain {
	case ChainRopsten:
		return core.NewEVMConnector(eth.NewChain(trim(eth.Ropsten()), spec.Seed)), nil
	case ChainGoerli:
		return core.NewEVMConnector(eth.NewChain(trim(eth.Goerli()), spec.Seed)), nil
	case ChainPolygon:
		return core.NewEVMConnector(eth.NewChain(trim(eth.PolygonMumbai()), spec.Seed)), nil
	case ChainAlgorand:
		return core.NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), spec.Seed)), nil
	default:
		return nil, fmt.Errorf("sim: unknown chain %q", spec.Chain)
	}
}

// RunSoak drives the sustained-load harness: deploy one check-in contract
// per area through the Connector, register the handles in an AreaRegistry,
// then have every user check in to their home area every round through the
// chain's batched submission path. The load phase is wall-clock timed; the
// returned digest lets callers assert that shard count and scheduling never
// change the chain's final state.
func RunSoak(spec SoakSpec) (*SoakResult, error) {
	if spec.Areas < 1 || spec.Users < 1 || spec.Rounds < 1 {
		return nil, fmt.Errorf("sim: soak needs areas, users and rounds >= 1 (got %d/%d/%d)",
			spec.Areas, spec.Users, spec.Rounds)
	}
	if spec.Shards < 1 {
		spec.Shards = 1
	}
	conn, err := newSoakConnector(spec)
	if err != nil {
		return nil, err
	}
	InstrumentConnector(conn, spec.Obs)

	var sc *obs.Scope
	if spec.Obs != nil {
		sc = spec.Obs.Tracer.NewScope(nil)
	}
	sp := sc.Start("sim.soak",
		obs.L("chain", string(spec.Chain)),
		obs.L("areas", fmt.Sprint(spec.Areas)),
		obs.L("users", fmt.Sprint(spec.Users)),
		obs.L("shards", fmt.Sprint(spec.Shards)))
	defer sp.End()

	compiled, err := core.CompileCheckin()
	if err != nil {
		return nil, err
	}

	// Deployment phase: one contract per area, registered for routing.
	// This happens before the clock starts — the soak measures sustained
	// load, not setup. EVM chains deploy through the batched submission
	// path: at 100k+ areas, one signed deployment per block (the
	// connector's submit-and-wait) would take days of wall clock.
	reg := core.NewAreaRegistry(spec.Shards)
	switch c := conn.(type) {
	case *core.EVMConnector:
		err = deployAreasEVM(spec, c, reg, compiled)
	default:
		var deployer *core.Account
		deployer, err = conn.NewAccount(100)
		if err != nil {
			return nil, err
		}
		for i := 0; i < spec.Areas && err == nil; i++ {
			area := soakAreaCode(i)
			h, _, derr := conn.Deploy(deployer, compiled, []lang.Value{
				lang.BytesValue([]byte(area)),
			})
			if derr != nil {
				err = fmt.Errorf("sim: deploy area %s: %w", area, derr)
				break
			}
			err = reg.Register(area, h)
		}
	}
	if err != nil {
		return nil, err
	}

	res := &SoakResult{
		Chain: spec.Chain, Areas: spec.Areas, Users: spec.Users,
		Rounds: spec.Rounds, Shards: spec.Shards,
	}
	switch c := conn.(type) {
	case *core.EVMConnector:
		err = soakEVM(spec, c, reg, compiled, res)
	case *core.AlgorandConnector:
		err = soakAlgorand(spec, c, reg, res)
	default:
		err = fmt.Errorf("sim: soak does not support connector %T", conn)
	}
	if err != nil {
		return nil, err
	}
	// Live-heap measurement, outside the timed window: force a collection
	// so HeapAlloc reflects reachable state, not garbage awaiting GC. The
	// KeepAlives below stop liveness analysis from letting the chain and
	// registry be collected before the reading — without them the number
	// measures an empty process, not the world state.
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	res.HeapBytes = m.HeapAlloc
	res.BytesPerUser = float64(m.HeapAlloc) / float64(spec.Users)
	runtime.KeepAlive(conn)
	runtime.KeepAlive(reg)
	return res, nil
}

// checkinGasLimit mirrors the connector's gas sizing for an API call: the
// conservative static analysis plus 25% headroom.
func checkinGasLimit(compiled *lang.Compiled) uint64 {
	for i := range compiled.Analysis.Methods {
		if compiled.Analysis.Methods[i].Name == "checkin" {
			g := compiled.Analysis.Methods[i].TotalEVMGas()
			return g + g/4
		}
	}
	return eth.DefaultGasLimit
}

// deployAreasEVM publishes one check-in contract per area through the
// chain's batched submission path: sequential deployer nonces keep the
// deterministic contract addresses computable up front, so handles are
// registered before the transactions even land. The deployer is funded
// proportionally to the area count — selection reserves maxFee×gasLimit
// per pending deployment up front.
func deployAreasEVM(spec SoakSpec, conn *core.EVMConnector, reg *core.AreaRegistry, compiled *lang.Compiled) error {
	c := conn.Chain()
	c.SetRetention(soakRetention)
	deployerAcct, err := conn.NewAccount(float64(spec.Areas) + 100)
	if err != nil {
		return err
	}
	deployer := deployerAcct.EVM()
	gasLimit := compiled.Analysis.EVMDeployGas + compiled.Analysis.EVMDeployGas/4
	tip := big.NewInt(2_000_000_000)
	// Headroom for the base-fee climb across the (few) full deploy blocks.
	maxFee := new(big.Int).Add(new(big.Int).Mul(c.BaseFee(), big.NewInt(8)), tip)

	const deployBatch = 4096
	txs := make([]*eth.Tx, 0, deployBatch)
	flush := func() error {
		if len(txs) == 0 {
			return nil
		}
		_, errs := c.SubmitBatch(txs)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("sim: deploy tx %d: %w", i, err)
			}
		}
		txs = txs[:0]
		return nil
	}
	for i := 0; i < spec.Areas; i++ {
		area := soakAreaCode(i)
		ctorData, err := lang.EncodeArgsEVM(lang.CtorMethodName, compiled.Program.Ctor.Params,
			[]lang.Value{lang.BytesValue([]byte(area))})
		if err != nil {
			return err
		}
		nonce := uint64(i)
		tx := &eth.Tx{
			From: deployer.Address, Nonce: nonce,
			Value: big.NewInt(0), Data: eth.PackDeployData(compiled.EVMCode, ctorData),
			GasLimit: gasLimit, MaxFee: maxFee, MaxTip: tip,
		}
		tx.Sign(deployer)
		txs = append(txs, tx)
		if len(txs) == deployBatch {
			if err := flush(); err != nil {
				return err
			}
		}
		h := &core.Handle{
			Connector: conn.Name(),
			EVMAddr:   chain.ContractAddress(deployer.Address, nonce),
			Compiled:  compiled,
		}
		if err := reg.Register(area, h); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	for i := 0; i < spec.Areas+200 && c.PendingCount() > 0; i++ {
		c.Step()
	}
	if n := c.PendingCount(); n != 0 {
		return fmt.Errorf("sim: %d deployments never included", n)
	}
	// Every registered handle must actually hold code.
	for _, area := range reg.Areas() {
		h, _ := reg.Lookup(area)
		if _, ok := c.ContractCode(h.EVMAddr); !ok {
			return fmt.Errorf("sim: deployment of area %s reverted", area)
		}
	}
	return nil
}

// soakEVM runs the load phase against an Ethereum-family chain.
func soakEVM(spec SoakSpec, conn *core.EVMConnector, reg *core.AreaRegistry, compiled *lang.Compiled, res *SoakResult) error {
	c := conn.Chain()
	c.SetShards(spec.Shards)
	c.SetRetention(soakRetention)
	api := compiled.Program.FindAPI("checkin")
	if api == nil {
		return fmt.Errorf("sim: checkin API missing from compiled contract")
	}
	gasLimit := checkinGasLimit(compiled)

	users := make([]*eth.Account, spec.Users)
	nonces := make([]uint64, spec.Users)
	targets := make([]chain.Address, spec.Users)
	areas := reg.Areas()
	for ui := range users {
		acct, err := conn.NewAccount(1)
		if err != nil {
			return err
		}
		users[ui] = acct.EVM()
		h, ok := reg.Lookup(areas[ui%len(areas)])
		if !ok {
			return fmt.Errorf("sim: area %s not registered", areas[ui%len(areas)])
		}
		targets[ui] = h.EVMAddr
	}

	tip := big.NewInt(2_000_000_000)
	blocksBefore := c.Head().Number
	simStart := c.Now()
	start := time.Now()
	for round := 0; round < spec.Rounds; round++ {
		maxFee := new(big.Int).Add(new(big.Int).Mul(c.BaseFee(), big.NewInt(2)), tip)
		txs := make([]*eth.Tx, 0, spec.Users)
		for ui, u := range users {
			data, err := lang.EncodeArgsEVM("checkin", api.Params, []lang.Value{
				lang.Uint64Value(uint64(ui)), lang.Uint64Value(uint64(round) + 1),
			})
			if err != nil {
				return err
			}
			to := targets[ui]
			tx := &eth.Tx{
				From: u.Address, Nonce: nonces[ui], To: &to,
				Value: big.NewInt(0), Data: data, GasLimit: gasLimit,
				MaxFee: maxFee, MaxTip: tip,
			}
			tx.Sign(u)
			nonces[ui]++
			txs = append(txs, tx)
		}
		_, errs := c.SubmitBatch(txs)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("sim: soak round %d tx %d: %w", round, i, err)
			}
		}
		res.Submitted += uint64(len(txs))
		c.Step()
		spec.Telemetry.Tick()
	}
	for i := 0; i < spec.Rounds*10+50 && c.PendingCount() > 0; i++ {
		c.Step()
	}
	spec.Telemetry.Tick()
	if n := c.PendingCount(); n != 0 {
		return fmt.Errorf("sim: soak drain incomplete: %d transactions pending", n)
	}
	res.Wall = time.Since(start)
	res.Simulated = c.Now() - simStart
	res.Included = res.Submitted
	res.Blocks = c.Head().Number - blocksBefore
	if st := c.ShardStats(); st != nil {
		res.Utilization = st.Utilization()
		res.ShardTxs = append([]uint64(nil), st.Txs...)
		res.ParallelBatches = st.ParallelBatches
	}
	res.Digest = c.Digest()
	res.StateRoot = c.StateRoot()
	return nil
}

// soakAlgorand runs the load phase against the Algorand chain.
func soakAlgorand(spec SoakSpec, conn *core.AlgorandConnector, reg *core.AreaRegistry, res *SoakResult) error {
	c := conn.Chain()
	c.SetShards(spec.Shards)
	c.SetRetention(soakRetention)

	users := make([]*algorand.Account, spec.Users)
	targets := make([]uint64, spec.Users)
	areas := reg.Areas()
	var api *lang.API
	for ui := range users {
		acct, err := conn.NewAccount(10)
		if err != nil {
			return err
		}
		users[ui] = acct.Algorand()
		h, ok := reg.Lookup(areas[ui%len(areas)])
		if !ok {
			return fmt.Errorf("sim: area %s not registered", areas[ui%len(areas)])
		}
		targets[ui] = h.AppID
		if api == nil {
			api = h.Compiled.Program.FindAPI("checkin")
		}
	}
	if api == nil {
		return fmt.Errorf("sim: checkin API missing from compiled contract")
	}

	blocksBefore := c.Head().Round
	simStart := c.Now()
	start := time.Now()
	for round := 0; round < spec.Rounds; round++ {
		groups := make([]algorand.Group, 0, spec.Users)
		for ui, u := range users {
			appArgs, err := lang.EncodeArgsTEAL("checkin", api.Params, []lang.Value{
				lang.Uint64Value(uint64(ui)), lang.Uint64Value(uint64(round) + 1),
			})
			if err != nil {
				return err
			}
			call := &algorand.Tx{
				Type: algorand.TxAppCall, Sender: u.Address,
				Fee: algorand.MinFee, AppID: targets[ui], Args: appArgs,
			}
			call.Sign(u)
			groups = append(groups, algorand.Group{call})
		}
		_, errs := c.SubmitBatch(groups)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("sim: soak round %d group %d: %w", round, i, err)
			}
		}
		res.Submitted += uint64(len(groups))
		c.Step()
		spec.Telemetry.Tick()
	}
	for i := 0; i < spec.Rounds*10+50 && c.PendingCount() > 0; i++ {
		c.Step()
	}
	spec.Telemetry.Tick()
	if n := c.PendingCount(); n != 0 {
		return fmt.Errorf("sim: soak drain incomplete: %d groups pending", n)
	}
	res.Wall = time.Since(start)
	res.Simulated = c.Now() - simStart
	res.Included = res.Submitted
	res.Blocks = c.Head().Round - blocksBefore
	if st := c.ShardStats(); st != nil {
		res.Utilization = st.Utilization()
		res.ShardTxs = append([]uint64(nil), st.Txs...)
		res.ParallelBatches = st.ParallelBatches
	}
	res.Digest = c.Digest()
	res.StateRoot = c.StateRoot()
	return nil
}
