package sim

import (
	"fmt"
	"math/big"
	"runtime"
	"time"

	"agnopol/internal/algorand"
	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/eth"
	"agnopol/internal/lang"
	"agnopol/internal/mstate/diskstore"
	"agnopol/internal/obs"
)

// SoakSpec describes a sustained-load run: M areas × K users × T rounds of
// simulated time, executed on a chain partitioned into Shards. Every user
// checks in to their home area every round, so the workload is dominated by
// disjoint per-area contract traffic — the case the sharded block builder
// is designed to parallelize.
type SoakSpec struct {
	// Chain selects the network preset (see AllChains).
	Chain ChainName
	// Areas (M) is the number of per-area check-in contracts deployed.
	Areas int
	// Users (K) is the number of accounts issuing check-ins.
	Users int
	// Rounds (T) is how many blocks of sustained load to drive; the drain
	// phase afterwards runs until the mempool is empty.
	Rounds int
	// Shards partitions block execution; 1 is the serial baseline.
	Shards int
	// Seed drives every random stream of the run.
	Seed uint64
	// Obs optionally attaches an observability bundle.
	Obs *obs.Obs
	// Telemetry optionally attaches a live-telemetry session: the sampler
	// is ticked — one registry sample plus an SLO evaluation — after every
	// load round and once after the drain, so /metrics, /timeseries and
	// /health evolve while the soak is still running.
	Telemetry *obs.Telemetry

	// StateDir, when set, persists the run into a diskstore at that path:
	// the world state is committed and a manifest checkpoint written after
	// setup, every CheckpointEvery load rounds, and after the drain. A run
	// killed at any point resumes from the last durable checkpoint.
	StateDir string
	// CheckpointEvery is the round cadence of mid-run checkpoints; zero or
	// negative keeps only the setup and final checkpoints.
	CheckpointEvery int
	// Resume continues the run recorded in StateDir instead of starting
	// fresh. The manifest is authoritative for Chain/Areas/Users/Rounds/
	// Seed — leave them zero or set them to matching values.
	Resume bool
	// StopAfterRounds > 0 checkpoints and returns (Result.Stopped) once
	// that many total rounds are done — an in-process stand-in for kill -9
	// that lets tests exercise the resume path deterministically. Requires
	// StateDir.
	StopAfterRounds int
}

// SoakResult aggregates one soak run.
type SoakResult struct {
	Chain  ChainName
	Areas  int
	Users  int
	Rounds int
	Shards int
	// Seed echoes the resolved experiment seed — on a resume it comes from
	// the state dir's manifest, not the (zero) caller spec.
	Seed uint64

	// Submitted and Included count user transactions (congestion traffic
	// excluded); after a full drain they are equal.
	Submitted uint64
	Included  uint64
	// Blocks is how many blocks the run produced, drain included.
	Blocks uint64

	// Wall is the host wall-clock time of the load phase; Simulated is the
	// chain-clock time it covered.
	Wall      time.Duration
	Simulated time.Duration

	// Utilization is each shard's share of executed transactions;
	// ParallelBatches counts blocks that actually fanned out.
	Utilization     []float64
	ShardTxs        []uint64
	ParallelBatches uint64

	// Digest fingerprints the chain's end state: two runs of the same spec
	// must produce the same digest regardless of Shards or GOMAXPROCS.
	Digest chain.Hash32
	// StateRoot is the world-state Merkle root at the end of the run —
	// a pure function of the live key/value set, so runs that differ only
	// in scheduling must agree on it.
	StateRoot chain.Hash32

	// FeesPaid is the total transaction fees the user accounts spent, in the
	// chain's native base units: every check-in moves zero value, so each
	// user's fees are exactly their funding minus their final balance, and
	// the sum is exact even across a checkpoint/resume split. MeanFeeEuro is
	// the euro cost per included transaction — the unit the paper compares
	// backends in; zero for stopped runs (inclusion is finalized on resume).
	FeesPaid    chain.Amount
	MeanFeeEuro float64

	// HeapBytes is the live heap after a forced GC at the end of the run;
	// BytesPerUser divides it by Users. With block retention bounded, the
	// quotient stays flat as users grow — memory tracks live state, not
	// history.
	HeapBytes    uint64
	BytesPerUser float64

	// Resumed marks a run reconstructed from a StateDir manifest rather
	// than started fresh; ReopenWall is the wall-clock cost of rebuilding
	// the chain from the committed root (diskstore open + trie load +
	// checkpoint restore).
	Resumed    bool
	ReopenWall time.Duration
	// Stopped marks a run that checkpointed and returned early at
	// StopAfterRounds. Submitted, Blocks, Digest and StateRoot reflect the
	// stop point; Included stays zero — inclusion accounting is finalized
	// by the resumed run that drains the mempool.
	Stopped bool
}

// TxsPerSecWall is the headline throughput number: included transactions
// per host wall-clock second.
func (r *SoakResult) TxsPerSecWall() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Included) / r.Wall.Seconds()
}

// TxsPerSecSimulated is the included transactions per simulated
// chain-clock second — a property of the workload, not the host.
func (r *SoakResult) TxsPerSecSimulated() float64 {
	if r.Simulated <= 0 {
		return 0
	}
	return float64(r.Included) / r.Simulated.Seconds()
}

// soakAreaCode synthesizes the i-th area's Open Location Code-style
// identifier. Distinct codes are all the contract requires.
func soakAreaCode(i int) string { return fmt.Sprintf("7H36SOAK+%03X", i) }

// soakRetention bounds how many blocks (and their receipts) a soak chain
// keeps resident — enough for any confirmation depth, small enough that a
// million-user run's memory is set by live state, not by history.
const soakRetention = 16

// Per-user funding. Check-ins move zero value, so funding minus final
// balance is exactly the fees a user paid — the identity FeesPaid is
// computed from, which is why funding is a named constant and not an inline
// literal at the Fund call.
var soakFundEVM = big.NewInt(1e18)

const soakFundAlgorand uint64 = 10_000_000

// newSoakConnector builds the chain under soak. EVM presets get their
// ambient congestion traffic trimmed so the measured workload — not the
// synthetic background — fills the blocks; the congestion stream stays on,
// seeded, and deterministic. The block gas limit scales with the user
// count so a round's check-ins fit a bounded number of blocks — at the
// paper's scales (≤ a few hundred users) the preset limit already
// dominates and nothing changes.
func newSoakConnector(spec SoakSpec, run *soakRun) (core.Connector, error) {
	trim := func(cfg eth.Config) eth.Config {
		cfg.CongestionMeanGas = 1_000_000
		cfg.SpikeProb = 0
		if scaled := uint64(spec.Users) * 200_000; scaled > cfg.BlockGasLimit {
			cfg.BlockGasLimit = scaled
		}
		return cfg
	}
	openEVM := func(cfg eth.Config) (core.Connector, error) {
		if run.resumed {
			if run.eth == nil {
				return nil, fmt.Errorf("sim: soak manifest for %s carries no EVM checkpoint", spec.Chain)
			}
			c, err := eth.Open(eth.Options{
				Config: cfg, Seed: spec.Seed,
				Store: run.store, Root: run.root, Checkpoint: run.eth,
			})
			if err != nil {
				return nil, err
			}
			return core.NewEVMConnector(c), nil
		}
		return core.NewEVMConnector(eth.NewChain(cfg, spec.Seed)), nil
	}
	switch spec.Chain {
	case ChainRopsten:
		return openEVM(trim(eth.Ropsten()))
	case ChainGoerli:
		return openEVM(trim(eth.Goerli()))
	case ChainPolygon:
		return openEVM(trim(eth.PolygonMumbai()))
	case ChainAlgorand:
		if run.resumed {
			if run.algo == nil {
				return nil, fmt.Errorf("sim: soak manifest for %s carries no Algorand checkpoint", spec.Chain)
			}
			c, err := algorand.Open(algorand.Options{
				Config: algorand.Testnet(), Seed: spec.Seed,
				Store: run.store, Root: run.root, Checkpoint: run.algo,
			})
			if err != nil {
				return nil, err
			}
			return core.NewAlgorandConnector(c), nil
		}
		return core.NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), spec.Seed)), nil
	default:
		return nil, fmt.Errorf("sim: unknown chain %q", spec.Chain)
	}
}

// RunSoak drives the sustained-load harness: deploy one check-in contract
// per area through the Connector, register the handles in an AreaRegistry,
// then have every user check in to their home area every round through the
// chain's batched submission path. The load phase is wall-clock timed; the
// returned digest lets callers assert that shard count and scheduling never
// change the chain's final state.
func RunSoak(spec SoakSpec) (*SoakResult, error) {
	if spec.Resume {
		if spec.StateDir == "" {
			return nil, fmt.Errorf("sim: soak resume requires StateDir")
		}
	} else if spec.Areas < 1 || spec.Users < 1 || spec.Rounds < 1 {
		return nil, fmt.Errorf("sim: soak needs areas, users and rounds >= 1 (got %d/%d/%d)",
			spec.Areas, spec.Users, spec.Rounds)
	}
	if spec.StopAfterRounds > 0 && spec.StateDir == "" {
		return nil, fmt.Errorf("sim: StopAfterRounds without StateDir would abandon the run unrecoverably")
	}

	run := &soakRun{}
	if spec.StateDir != "" {
		store, err := diskstore.Open(spec.StateDir, diskstore.Options{})
		if err != nil {
			return nil, err
		}
		defer store.Close()
		if spec.Resume {
			spec, run, err = loadSoakManifest(store, spec)
			if err != nil {
				return nil, err
			}
		} else if _, committed := store.Root(); committed {
			return nil, fmt.Errorf("sim: %s already holds a committed soak; set Resume or use a fresh directory", spec.StateDir)
		}
		run.persist = &soakPersist{store: store}
	}
	if spec.Shards < 1 {
		spec.Shards = 1
	}
	if run.persist != nil {
		run.persist.meta = soakCheckpoint{
			Version: soakCheckpointVersion, Chain: spec.Chain,
			Areas: spec.Areas, Users: spec.Users, Rounds: spec.Rounds,
			Shards: spec.Shards, Seed: spec.Seed,
		}
	}

	reopenStart := time.Now()
	conn, err := newSoakConnector(spec, run)
	if err != nil {
		return nil, err
	}
	var reopenWall time.Duration
	if run.resumed {
		reopenWall = time.Since(reopenStart)
	}
	InstrumentConnector(conn, spec.Obs)

	var sc *obs.Scope
	if spec.Obs != nil {
		sc = spec.Obs.Tracer.NewScope(nil)
	}
	sp := sc.Start("sim.soak",
		obs.L("chain", string(spec.Chain)),
		obs.L("areas", fmt.Sprint(spec.Areas)),
		obs.L("users", fmt.Sprint(spec.Users)),
		obs.L("shards", fmt.Sprint(spec.Shards)))
	defer sp.End()

	compiled, err := core.CompileCheckin()
	if err != nil {
		return nil, err
	}

	// Deployment phase: one contract per area, registered for routing.
	// This happens before the clock starts — the soak measures sustained
	// load, not setup. EVM chains deploy through the batched submission
	// path: at 100k+ areas, one signed deployment per block (the
	// connector's submit-and-wait) would take days of wall clock. A
	// resumed run skips deployment entirely — the contracts are already in
	// the loaded state, and their identities re-derive from the spec.
	reg := core.NewAreaRegistry(spec.Shards)
	if run.resumed {
		err = rebuildSoakRegistry(spec, conn, reg, compiled)
	} else {
		switch c := conn.(type) {
		case *core.EVMConnector:
			err = deployAreasEVM(spec, c, reg, compiled)
		case *core.AlgorandConnector:
			err = deployAreasAlgorand(spec, c, reg, compiled)
		default:
			err = fmt.Errorf("sim: soak does not support connector %T", conn)
		}
	}
	if err != nil {
		return nil, err
	}

	res := &SoakResult{
		Chain: spec.Chain, Areas: spec.Areas, Users: spec.Users,
		Rounds: spec.Rounds, Shards: spec.Shards, Seed: spec.Seed,
		Resumed: run.resumed, ReopenWall: reopenWall,
	}
	switch c := conn.(type) {
	case *core.EVMConnector:
		err = soakEVM(spec, c, reg, compiled, res, run)
	case *core.AlgorandConnector:
		err = soakAlgorand(spec, c, reg, res, run)
	default:
		err = fmt.Errorf("sim: soak does not support connector %T", conn)
	}
	if err != nil {
		return nil, err
	}
	// Live-heap measurement, outside the timed window: force a collection
	// so HeapAlloc reflects reachable state, not garbage awaiting GC. The
	// KeepAlives below stop liveness analysis from letting the chain and
	// registry be collected before the reading — without them the number
	// measures an empty process, not the world state.
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	res.HeapBytes = m.HeapAlloc
	res.BytesPerUser = float64(m.HeapAlloc) / float64(spec.Users)
	runtime.KeepAlive(conn)
	runtime.KeepAlive(reg)
	return res, nil
}

// checkinGasLimit mirrors the connector's gas sizing for an API call: the
// conservative static analysis plus 25% headroom.
func checkinGasLimit(compiled *lang.Compiled) uint64 {
	for i := range compiled.Analysis.Methods {
		if compiled.Analysis.Methods[i].Name == "checkin" {
			g := compiled.Analysis.Methods[i].TotalEVMGas()
			return g + g/4
		}
	}
	return eth.DefaultGasLimit
}

// deployAreasEVM publishes one check-in contract per area through the
// chain's batched submission path: sequential deployer nonces keep the
// deterministic contract addresses computable up front, so handles are
// registered before the transactions even land. The deployer's key comes
// from the soak-owned stream and is funded via Fund — proportionally to
// the area count, since selection reserves maxFee×gasLimit per pending
// deployment up front.
func deployAreasEVM(spec SoakSpec, conn *core.EVMConnector, reg *core.AreaRegistry, compiled *lang.Compiled) error {
	c := conn.Chain()
	c.SetRetention(soakRetention)
	deployer := soakAccountEVM(soakKeyStream(spec.Seed))
	c.Fund(deployer.Address, new(big.Int).Mul(big.NewInt(int64(spec.Areas)+100), big.NewInt(1e18)))
	gasLimit := compiled.Analysis.EVMDeployGas + compiled.Analysis.EVMDeployGas/4
	tip := big.NewInt(2_000_000_000)
	// Headroom for the base-fee climb across the (few) full deploy blocks.
	maxFee := new(big.Int).Add(new(big.Int).Mul(c.BaseFee(), big.NewInt(8)), tip)

	const deployBatch = 4096
	txs := make([]*eth.Tx, 0, deployBatch)
	flush := func() error {
		if len(txs) == 0 {
			return nil
		}
		_, errs := c.SubmitBatch(txs)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("sim: deploy tx %d: %w", i, err)
			}
		}
		txs = txs[:0]
		return nil
	}
	for i := 0; i < spec.Areas; i++ {
		area := soakAreaCode(i)
		ctorData, err := lang.EncodeArgsEVM(lang.CtorMethodName, compiled.Program.Ctor.Params,
			[]lang.Value{lang.BytesValue([]byte(area))})
		if err != nil {
			return err
		}
		nonce := uint64(i)
		tx := &eth.Tx{
			From: deployer.Address, Nonce: nonce,
			Value: big.NewInt(0), Data: eth.PackDeployData(compiled.EVMCode, ctorData),
			GasLimit: gasLimit, MaxFee: maxFee, MaxTip: tip,
		}
		tx.Sign(deployer)
		txs = append(txs, tx)
		if len(txs) == deployBatch {
			if err := flush(); err != nil {
				return err
			}
		}
		h := &core.Handle{
			Connector: conn.Name(),
			EVMAddr:   chain.ContractAddress(deployer.Address, nonce),
			Compiled:  compiled,
		}
		if err := reg.Register(area, h); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	for i := 0; i < spec.Areas+200 && c.PendingCount() > 0; i++ {
		c.Step()
	}
	if n := c.PendingCount(); n != 0 {
		return fmt.Errorf("sim: %d deployments never included", n)
	}
	// Every registered handle must actually hold code.
	for _, area := range reg.Areas() {
		h, _ := reg.Lookup(area)
		if _, ok := c.ContractCode(h.EVMAddr); !ok {
			return fmt.Errorf("sim: deployment of area %s reverted", area)
		}
	}
	return nil
}

// deployAreasAlgorand publishes one check-in application per area through
// the connector's submit-and-wait path. Sequential creation pins app ids
// to 1..Areas, which is what lets a resumed run re-derive its registry
// without replaying the deployment.
func deployAreasAlgorand(spec SoakSpec, conn *core.AlgorandConnector, reg *core.AreaRegistry, compiled *lang.Compiled) error {
	c := conn.Chain()
	c.SetRetention(soakRetention)
	dep := soakAccountAlgorand(soakKeyStream(spec.Seed))
	c.Fund(dep.Address, 100_000_000+uint64(spec.Areas)*2*algorand.MinFee)
	deployer := core.AlgorandAccount(dep)
	for i := 0; i < spec.Areas; i++ {
		area := soakAreaCode(i)
		h, _, err := conn.Deploy(deployer, compiled, []lang.Value{
			lang.BytesValue([]byte(area)),
		})
		if err != nil {
			return fmt.Errorf("sim: deploy area %s: %w", area, err)
		}
		if h.AppID != uint64(i)+1 {
			return fmt.Errorf("sim: area %s deployed as app %d, want %d (resume derivation relies on sequential ids)",
				area, h.AppID, i+1)
		}
		if err := reg.Register(area, h); err != nil {
			return err
		}
	}
	return nil
}

// soakEVM runs the load phase against an Ethereum-family chain.
func soakEVM(spec SoakSpec, conn *core.EVMConnector, reg *core.AreaRegistry, compiled *lang.Compiled, res *SoakResult, run *soakRun) error {
	c := conn.Chain()
	c.SetShards(spec.Shards)
	c.SetRetention(soakRetention)
	api := compiled.Program.FindAPI("checkin")
	if api == nil {
		return fmt.Errorf("sim: checkin API missing from compiled contract")
	}
	gasLimit := checkinGasLimit(compiled)

	// User keys come from the soak-owned stream (deployer first, then one
	// key per user index), so a resumed process re-derives the identical
	// accounts; only a fresh run funds them. Each user submits exactly one
	// transaction per round, which pins their nonce at round start to the
	// number of completed rounds.
	keys := soakKeyStream(spec.Seed)
	_ = soakAccountEVM(keys) // skip the deployer's draw
	users := make([]*eth.Account, spec.Users)
	nonces := make([]uint64, spec.Users)
	targets := make([]chain.Address, spec.Users)
	areas := reg.Areas()
	for ui := range users {
		u := soakAccountEVM(keys)
		if !run.resumed {
			c.Fund(u.Address, new(big.Int).Set(soakFundEVM))
		}
		users[ui] = u
		nonces[ui] = uint64(run.startRound)
		h, ok := reg.Lookup(areas[ui%len(areas)])
		if !ok {
			return fmt.Errorf("sim: area %s not registered", areas[ui%len(areas)])
		}
		targets[ui] = h.EVMAddr
	}

	tip := big.NewInt(2_000_000_000)
	blocksBefore := c.Head().Number
	simStart := c.Now()
	if run.resumed {
		blocksBefore = run.blocksAtLoadStart
		simStart = run.simStart
	}
	if run.persist != nil {
		run.persist.meta.BlocksAtLoadStart = blocksBefore
		run.persist.meta.SimStart = simStart
		if !run.resumed {
			if err := run.persist.commitEVM(c, 0, 0, false); err != nil {
				return err
			}
		}
	}
	res.Submitted = run.submitted0
	start := time.Now()
	finish := func() {
		res.Wall = time.Since(start)
		res.Simulated = c.Now() - simStart
		res.Blocks = c.Head().Number - blocksBefore
		if st := c.ShardStats(); st != nil {
			res.Utilization = st.Utilization()
			res.ShardTxs = append([]uint64(nil), st.Txs...)
			res.ParallelBatches = st.ParallelBatches
		}
		res.Digest = c.Digest()
		res.StateRoot = c.StateRoot()
		fees := new(big.Int)
		for _, u := range users {
			bal := c.Balance(u.Address)
			fees.Add(fees, new(big.Int).Sub(soakFundEVM, bal.Base))
			res.FeesPaid = chain.Amount{Base: fees, Unit: bal.Unit}
		}
	}
	for round := run.startRound; round < spec.Rounds; round++ {
		maxFee := new(big.Int).Add(new(big.Int).Mul(c.BaseFee(), big.NewInt(2)), tip)
		txs := make([]*eth.Tx, 0, spec.Users)
		for ui, u := range users {
			data, err := lang.EncodeArgsEVM("checkin", api.Params, []lang.Value{
				lang.Uint64Value(uint64(ui)), lang.Uint64Value(uint64(round) + 1),
			})
			if err != nil {
				return err
			}
			to := targets[ui]
			tx := &eth.Tx{
				From: u.Address, Nonce: nonces[ui], To: &to,
				Value: big.NewInt(0), Data: data, GasLimit: gasLimit,
				MaxFee: maxFee, MaxTip: tip,
			}
			tx.Sign(u)
			nonces[ui]++
			txs = append(txs, tx)
		}
		_, errs := c.SubmitBatch(txs)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("sim: soak round %d tx %d: %w", round, i, err)
			}
		}
		res.Submitted += uint64(len(txs))
		c.Step()
		spec.Telemetry.Tick()
		roundsDone := round + 1
		stop := spec.StopAfterRounds > 0 && roundsDone >= spec.StopAfterRounds && roundsDone < spec.Rounds
		if run.persist != nil && (stop || (spec.CheckpointEvery > 0 && roundsDone%spec.CheckpointEvery == 0)) {
			if err := run.persist.commitEVM(c, roundsDone, res.Submitted, false); err != nil {
				return err
			}
		}
		if stop {
			res.Stopped = true
			finish()
			return nil
		}
	}
	for i := 0; i < spec.Rounds*10+50 && c.PendingCount() > 0; i++ {
		c.Step()
	}
	spec.Telemetry.Tick()
	if n := c.PendingCount(); n != 0 {
		return fmt.Errorf("sim: soak drain incomplete: %d transactions pending", n)
	}
	finish()
	res.Included = res.Submitted
	if res.Included > 0 {
		res.MeanFeeEuro = res.FeesPaid.Euros() / float64(res.Included)
	}
	if run.persist != nil {
		if err := run.persist.commitEVM(c, spec.Rounds, res.Submitted, true); err != nil {
			return err
		}
	}
	return nil
}

// soakAlgorand runs the load phase against the Algorand chain.
func soakAlgorand(spec SoakSpec, conn *core.AlgorandConnector, reg *core.AreaRegistry, res *SoakResult, run *soakRun) error {
	c := conn.Chain()
	c.SetShards(spec.Shards)
	c.SetRetention(soakRetention)

	keys := soakKeyStream(spec.Seed)
	_ = soakAccountAlgorand(keys) // skip the deployer's draw
	users := make([]*algorand.Account, spec.Users)
	targets := make([]uint64, spec.Users)
	areas := reg.Areas()
	var api *lang.API
	for ui := range users {
		u := soakAccountAlgorand(keys)
		if !run.resumed {
			c.Fund(u.Address, soakFundAlgorand)
		}
		users[ui] = u
		h, ok := reg.Lookup(areas[ui%len(areas)])
		if !ok {
			return fmt.Errorf("sim: area %s not registered", areas[ui%len(areas)])
		}
		targets[ui] = h.AppID
		if api == nil {
			api = h.Compiled.Program.FindAPI("checkin")
		}
	}
	if api == nil {
		return fmt.Errorf("sim: checkin API missing from compiled contract")
	}

	blocksBefore := c.Head().Round
	simStart := c.Now()
	if run.resumed {
		blocksBefore = run.blocksAtLoadStart
		simStart = run.simStart
	}
	if run.persist != nil {
		run.persist.meta.BlocksAtLoadStart = blocksBefore
		run.persist.meta.SimStart = simStart
		if !run.resumed {
			if err := run.persist.commitAlgorand(c, 0, 0, false); err != nil {
				return err
			}
		}
	}
	res.Submitted = run.submitted0
	start := time.Now()
	finish := func() {
		res.Wall = time.Since(start)
		res.Simulated = c.Now() - simStart
		res.Blocks = c.Head().Round - blocksBefore
		if st := c.ShardStats(); st != nil {
			res.Utilization = st.Utilization()
			res.ShardTxs = append([]uint64(nil), st.Txs...)
			res.ParallelBatches = st.ParallelBatches
		}
		res.Digest = c.Digest()
		res.StateRoot = c.StateRoot()
		fees := new(big.Int)
		for _, u := range users {
			bal := c.Balance(u.Address)
			fees.Add(fees, new(big.Int).Sub(new(big.Int).SetUint64(soakFundAlgorand), bal.Base))
			res.FeesPaid = chain.Amount{Base: fees, Unit: bal.Unit}
		}
	}
	for round := run.startRound; round < spec.Rounds; round++ {
		groups := make([]algorand.Group, 0, spec.Users)
		for ui, u := range users {
			appArgs, err := lang.EncodeArgsTEAL("checkin", api.Params, []lang.Value{
				lang.Uint64Value(uint64(ui)), lang.Uint64Value(uint64(round) + 1),
			})
			if err != nil {
				return err
			}
			call := &algorand.Tx{
				Type: algorand.TxAppCall, Sender: u.Address,
				Fee: algorand.MinFee, AppID: targets[ui], Args: appArgs,
			}
			call.Sign(u)
			groups = append(groups, algorand.Group{call})
		}
		_, errs := c.SubmitBatch(groups)
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("sim: soak round %d group %d: %w", round, i, err)
			}
		}
		res.Submitted += uint64(len(groups))
		c.Step()
		spec.Telemetry.Tick()
		roundsDone := round + 1
		stop := spec.StopAfterRounds > 0 && roundsDone >= spec.StopAfterRounds && roundsDone < spec.Rounds
		if run.persist != nil && (stop || (spec.CheckpointEvery > 0 && roundsDone%spec.CheckpointEvery == 0)) {
			if err := run.persist.commitAlgorand(c, roundsDone, res.Submitted, false); err != nil {
				return err
			}
		}
		if stop {
			res.Stopped = true
			finish()
			return nil
		}
	}
	for i := 0; i < spec.Rounds*10+50 && c.PendingCount() > 0; i++ {
		c.Step()
	}
	spec.Telemetry.Tick()
	if n := c.PendingCount(); n != 0 {
		return fmt.Errorf("sim: soak drain incomplete: %d groups pending", n)
	}
	finish()
	res.Included = res.Submitted
	if res.Included > 0 {
		res.MeanFeeEuro = res.FeesPaid.Euros() / float64(res.Included)
	}
	if run.persist != nil {
		if err := run.persist.commitAlgorand(c, spec.Rounds, res.Submitted, true); err != nil {
			return err
		}
	}
	return nil
}
