package sim

import (
	"fmt"
	"sync"
	"time"

	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/obs"
	"agnopol/internal/olc"
)

// Cross-chain soak — the agnosticism claim under sustained mixed load. A
// single-chain soak exercises one Connector at a time, so "the same
// contracts run unchanged over EVM and Algorand" is only ever tested
// serially. RunMultiSoak spreads one workload across several backends at
// once: areas are assigned round-robin, each backend runs its share of the
// load as an independent seed-forked soak, and all backends' SubmitBatch
// loops execute concurrently in one process. Because every per-backend
// stream derives from the multi-soak seed by a domain-tagged fork — never
// from shared mutable state — the per-backend digests are bit-identical
// whether the backends run concurrently or one after another, at any
// GOMAXPROCS. That interleaving-independence is the determinism contract
// polbench re-checks and benchgate gates.

// MultiSoakSpec describes one soak spread across several chain backends.
type MultiSoakSpec struct {
	// Chains lists the backends; at least two distinct presets. Area i is
	// served by Chains[i % len(Chains)].
	Chains []ChainName
	// Areas (M) is the global area count, partitioned round-robin over the
	// backends; must be >= len(Chains) so every backend serves load.
	Areas int
	// Users (K) is the global user count. Each user's home area is
	// (user % Areas), so users follow their area to its backend.
	Users int
	// Rounds (T) is the sustained-load duration, per backend.
	Rounds int
	// Shards partitions each backend's block execution; 1 is serial.
	Shards int
	// Seed drives every stream of the run. Backend b's sub-soak seed is
	// NewRand(Seed).Fork("multisoak:"+chain) — a pure function of (Seed,
	// chain name), independent of backend order and of the other backends.
	Seed uint64
	// Obs and Telemetry are shared by all backends; both are safe under
	// concurrent use.
	Obs       *obs.Obs
	Telemetry *obs.Telemetry
	// Sequential runs the backends one after another instead of
	// concurrently. Results must be bit-identical either way — polbench
	// runs both and errors on divergence.
	Sequential bool
	// DiscoveryShards is the shard count of the DHT discovery phase; zero
	// defaults to Shards. Discovery routes every area's contract lookup
	// through the hypercube twice — flat (OLC dual encoding) and sharded
	// (ShardOf-affine neighborhoods) — and the report asserts both modes
	// resolved identical handles.
	DiscoveryShards int
}

// BackendResult is one backend's share of a multi-soak.
type BackendResult struct {
	Chain ChainName
	// Areas and Users are this backend's partition sizes.
	Areas int
	Users int
	// Seed is the backend's forked sub-soak seed.
	Seed uint64
	Soak *SoakResult
}

// DiscoveryReport summarizes the DHT discovery phase: every user resolved
// their home area's contract through the hypercube in both flat and
// sharded mode before load started.
type DiscoveryReport struct {
	// Shards is the discovery shard count; R the hypercube dimension.
	Shards int
	R      int
	// Lookups counts sharded-mode resolutions (one per user);
	// PerShardLookups splits them by AreaRegistry.ShardOf. The sum of the
	// split equals Lookups — the gate checks it.
	Lookups         uint64
	PerShardLookups []uint64
	// MaxHops is the longest route any lookup took, over both modes; the
	// hypercube bound guarantees MaxHops <= R.
	MaxHops int
	// FlatEquivalent is true when every sharded lookup returned the same
	// handle as the flat lookup for the same area — the determinism
	// contract of sharded discovery.
	FlatEquivalent bool
}

// MultiSoakResult aggregates one cross-chain soak.
type MultiSoakResult struct {
	Chains []ChainName
	Areas  int
	Users  int
	Rounds int
	Shards int
	Seed   uint64

	Backends  []BackendResult
	Discovery DiscoveryReport

	// Wall is the host wall-clock time of the backend pass — the span from
	// starting the first backend to the last one finishing. Sequential
	// runs accumulate; concurrent runs overlap.
	Wall time.Duration
	// TotalIncluded sums included user transactions over all backends.
	TotalIncluded uint64
	// AggregateTps is TotalIncluded per Wall second — the cross-chain
	// headline. SlowestTps is the slowest backend's own wall throughput;
	// SpeedupVsSlowest is their ratio, the gain from running the backends
	// side by side instead of being bound by the slowest one.
	AggregateTps     float64
	SlowestTps       float64
	SpeedupVsSlowest float64
}

// multiSoakAreaCode synthesizes the i-th global area's full Open Location
// Code by spelling i in base 20 over the second digit quad — unlike the
// single-chain soak's internal labels these are valid OLC, because the
// discovery phase routes them through the cube's OLC dual encoding.
func multiSoakAreaCode(i int) string {
	a := olc.Alphabet
	n := len(a)
	return fmt.Sprintf("7H36%c%c%c%c+Q2",
		a[(i/(n*n*n))%n], a[(i/(n*n))%n], a[(i/n)%n], a[i%n])
}

// multiSoakSeed derives backend b's sub-soak seed — a pure function of the
// multi-soak seed and the chain name, so it does not depend on backend
// order or count.
func multiSoakSeed(seed uint64, name ChainName) uint64 {
	return chain.NewRand(seed).Fork("multisoak:" + string(name)).Uint64()
}

// multiSoakHandle derives the contract handle area localIdx will have on
// its backend, without running the deployment: EVM contract addresses are
// a pure function of the deployer key (first draw of the backend's soak
// key stream) and the sequential nonce, and Algorand app ids are pinned to
// 1..Areas by the deployer. The discovery phase publishes these derived
// handles; the backend soaks later deploy the real contracts at exactly
// these identities.
func multiSoakHandle(name ChainName, seed uint64, localIdx int) (*core.Handle, error) {
	switch name {
	case ChainRopsten, ChainGoerli, ChainPolygon:
		deployer := soakAccountEVM(soakKeyStream(seed))
		return &core.Handle{
			Connector: string(name),
			EVMAddr:   chain.ContractAddress(deployer.Address, uint64(localIdx)),
		}, nil
	case ChainAlgorand:
		return &core.Handle{Connector: string(name), AppID: uint64(localIdx) + 1}, nil
	default:
		return nil, fmt.Errorf("sim: unknown chain %q", name)
	}
}

// runMultiDiscovery is the pre-load discovery phase: publish every area's
// handle into one hypercube in both flat and sharded placement, then have
// every user resolve their home area in both modes and check the handles
// agree. Per-shard lookup tallies feed the report (and, through Obs, the
// core_dht_discovery_total counters).
func runMultiDiscovery(spec MultiSoakSpec, seeds []uint64) (DiscoveryReport, error) {
	sys, err := core.NewSystem(spec.Seed)
	if err != nil {
		return DiscoveryReport{}, err
	}
	shards := spec.DiscoveryShards
	if shards < 1 {
		shards = spec.Shards
	}
	reg := core.NewAreaRegistry(shards)
	flat := core.NewDHTDiscovery(sys, reg, false, spec.Obs)
	sharded := core.NewDHTDiscovery(sys, reg, true, spec.Obs)

	rep := DiscoveryReport{
		Shards:          shards,
		R:               sys.R,
		PerShardLookups: make([]uint64, shards),
		FlatEquivalent:  true,
	}
	mask := uint64(1)<<uint(sys.R) - 1
	codes := make([]string, spec.Areas)
	for i := 0; i < spec.Areas; i++ {
		b := i % len(spec.Chains)
		h, err := multiSoakHandle(spec.Chains[b], seeds[b], i/len(spec.Chains))
		if err != nil {
			return rep, err
		}
		codes[i] = multiSoakAreaCode(i)
		if err := reg.Register(codes[i], h); err != nil {
			return rep, err
		}
		via := uint64(i) & mask
		if _, err := flat.Publish(via, codes[i], h); err != nil {
			return rep, err
		}
		if _, err := sharded.Publish(via, codes[i], h); err != nil {
			return rep, err
		}
	}
	for u := 0; u < spec.Users; u++ {
		code := codes[u%spec.Areas]
		via := uint64(u) & mask
		hf, hopsF, ok, err := flat.Lookup(via, code)
		if err != nil || !ok {
			return rep, fmt.Errorf("sim: flat discovery of area %s failed (found=%v): %w", code, ok, err)
		}
		hs, hopsS, ok, err := sharded.Lookup(via, code)
		if err != nil || !ok {
			return rep, fmt.Errorf("sim: sharded discovery of area %s failed (found=%v): %w", code, ok, err)
		}
		if hf.ID() != hs.ID() {
			rep.FlatEquivalent = false
		}
		if hopsF > rep.MaxHops {
			rep.MaxHops = hopsF
		}
		if hopsS > rep.MaxHops {
			rep.MaxHops = hopsS
		}
		rep.Lookups++
		rep.PerShardLookups[reg.ShardOf(code)]++
	}
	return rep, nil
}

// multiSoakPartition counts each backend's share of areas and users under
// the round-robin assignment. Backend b serves the areas {i : i mod B ==
// b} and the users whose home area (u mod Areas) lands there.
func multiSoakPartition(spec MultiSoakSpec) (areasOf, usersOf []int) {
	b := len(spec.Chains)
	areasOf = make([]int, b)
	usersOf = make([]int, b)
	for i := 0; i < spec.Areas; i++ {
		areasOf[i%b]++
	}
	for u := 0; u < spec.Users; u++ {
		usersOf[(u%spec.Areas)%b]++
	}
	return areasOf, usersOf
}

// RunMultiSoak drives one soak across several chain backends: a DHT
// discovery phase resolves every user's area contract through the
// hypercube (flat and sharded, checked equivalent), then each backend runs
// its partition of the workload as an independent seed-forked soak — all
// backends concurrently unless spec.Sequential. Per-backend digests and
// state roots come from the sub-soaks and are invariant to the
// interleaving.
func RunMultiSoak(spec MultiSoakSpec) (*MultiSoakResult, error) {
	if len(spec.Chains) < 2 {
		return nil, fmt.Errorf("sim: multi-soak needs at least 2 backends (got %d)", len(spec.Chains))
	}
	seen := make(map[ChainName]bool, len(spec.Chains))
	for _, name := range spec.Chains {
		switch name {
		case ChainRopsten, ChainGoerli, ChainPolygon, ChainAlgorand:
		default:
			return nil, fmt.Errorf("sim: unknown chain %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("sim: duplicate backend %q", name)
		}
		seen[name] = true
	}
	if spec.Areas < len(spec.Chains) {
		return nil, fmt.Errorf("sim: %d areas cannot cover %d backends", spec.Areas, len(spec.Chains))
	}
	if spec.Users < spec.Areas {
		return nil, fmt.Errorf("sim: %d users cannot populate %d areas", spec.Users, spec.Areas)
	}
	if spec.Rounds < 1 {
		return nil, fmt.Errorf("sim: multi-soak needs rounds >= 1 (got %d)", spec.Rounds)
	}
	if spec.Shards < 1 {
		spec.Shards = 1
	}

	seeds := make([]uint64, len(spec.Chains))
	for b, name := range spec.Chains {
		seeds[b] = multiSoakSeed(spec.Seed, name)
	}
	discovery, err := runMultiDiscovery(spec, seeds)
	if err != nil {
		return nil, err
	}
	if !discovery.FlatEquivalent {
		return nil, fmt.Errorf("sim: sharded DHT discovery resolved different handles than flat discovery")
	}

	areasOf, usersOf := multiSoakPartition(spec)
	res := &MultiSoakResult{
		Chains: append([]ChainName(nil), spec.Chains...),
		Areas:  spec.Areas, Users: spec.Users, Rounds: spec.Rounds,
		Shards: spec.Shards, Seed: spec.Seed,
		Backends:  make([]BackendResult, len(spec.Chains)),
		Discovery: discovery,
	}
	errs := make([]error, len(spec.Chains))
	start := time.Now()
	var wg sync.WaitGroup
	for b, name := range spec.Chains {
		res.Backends[b] = BackendResult{
			Chain: name, Areas: areasOf[b], Users: usersOf[b], Seed: seeds[b],
		}
		sub := SoakSpec{
			Chain: name, Areas: areasOf[b], Users: usersOf[b],
			Rounds: spec.Rounds, Shards: spec.Shards, Seed: seeds[b],
			Obs: spec.Obs, Telemetry: spec.Telemetry,
		}
		run := func(b int) {
			res.Backends[b].Soak, errs[b] = RunSoak(sub)
		}
		if spec.Sequential {
			run(b)
		} else {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				run(b)
			}(b)
		}
	}
	wg.Wait()
	res.Wall = time.Since(start)
	for b, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: backend %s: %w", spec.Chains[b], err)
		}
	}

	for b := range res.Backends {
		soak := res.Backends[b].Soak
		res.TotalIncluded += soak.Included
		tps := soak.TxsPerSecWall()
		if b == 0 || tps < res.SlowestTps {
			res.SlowestTps = tps
		}
	}
	if res.Wall > 0 {
		res.AggregateTps = float64(res.TotalIncluded) / res.Wall.Seconds()
	}
	if res.SlowestTps > 0 {
		res.SpeedupVsSlowest = res.AggregateTps / res.SlowestTps
	}
	return res, nil
}
