package sim

import (
	"strconv"
	"testing"

	"agnopol/internal/chain"
	"agnopol/internal/obs"
	"agnopol/internal/olc"
)

func multiSmokeSpec() MultiSoakSpec {
	return MultiSoakSpec{
		Chains: AllChains, // goerli + polygon + algorand
		Areas:  6, Users: 12, Rounds: 4, Shards: 2, Seed: 42,
	}
}

// TestMultiSoakInterleavingInvariance is the tentpole determinism test:
// the same spec run with all backends concurrent and with all backends
// sequential must produce bit-identical per-backend digests and state
// roots — scheduling must never reach chain state.
func TestMultiSoakInterleavingInvariance(t *testing.T) {
	spec := multiSmokeSpec()
	conc, err := RunMultiSoak(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Sequential = true
	seq, err := RunMultiSoak(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(conc.Backends) != len(seq.Backends) {
		t.Fatalf("backend counts diverge: %d vs %d", len(conc.Backends), len(seq.Backends))
	}
	for b := range conc.Backends {
		c, s := conc.Backends[b], seq.Backends[b]
		if c.Chain != s.Chain {
			t.Fatalf("backend %d chain diverges: %s vs %s", b, c.Chain, s.Chain)
		}
		if c.Soak.Digest != s.Soak.Digest {
			t.Errorf("%s: concurrent digest %x != sequential digest %x", c.Chain, c.Soak.Digest, s.Soak.Digest)
		}
		if c.Soak.StateRoot != s.Soak.StateRoot {
			t.Errorf("%s: concurrent root %x != sequential root %x", c.Chain, c.Soak.StateRoot, s.Soak.StateRoot)
		}
		if c.Soak.Digest == (chain.Hash32{}) {
			t.Errorf("%s: digest is all-zero", c.Chain)
		}
		if c.Soak.Included != s.Soak.Included || c.Soak.Included == 0 {
			t.Errorf("%s: included diverges or is zero: %d vs %d", c.Chain, c.Soak.Included, s.Soak.Included)
		}
	}
}

// TestMultiSoakPartitionAndAggregates pins the deterministic area→backend
// assignment and the derived aggregate numbers.
func TestMultiSoakPartitionAndAggregates(t *testing.T) {
	res, err := RunMultiSoak(multiSmokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Backends) != 3 {
		t.Fatalf("want 3 backends, got %d", len(res.Backends))
	}
	var areas, users int
	var included uint64
	for _, b := range res.Backends {
		// 6 areas round-robin over 3 backends = 2 each; users follow.
		if b.Areas != 2 {
			t.Errorf("%s: got %d areas, want 2", b.Chain, b.Areas)
		}
		if b.Users != 4 {
			t.Errorf("%s: got %d users, want 4", b.Chain, b.Users)
		}
		if b.Soak.Included != uint64(b.Users*res.Rounds) {
			t.Errorf("%s: included %d, want users*rounds=%d", b.Chain, b.Soak.Included, b.Users*res.Rounds)
		}
		if b.Soak.MeanFeeEuro <= 0 {
			t.Errorf("%s: mean fee %v not positive", b.Chain, b.Soak.MeanFeeEuro)
		}
		if b.Seed != multiSoakSeed(res.Seed, b.Chain) {
			t.Errorf("%s: seed %d is not the domain-tagged fork", b.Chain, b.Seed)
		}
		areas += b.Areas
		users += b.Users
		included += b.Soak.Included
	}
	if areas != res.Areas || users != res.Users {
		t.Fatalf("partition does not cover the spec: %d/%d areas, %d/%d users", areas, res.Areas, users, res.Users)
	}
	if res.TotalIncluded != included {
		t.Fatalf("TotalIncluded %d != backend sum %d", res.TotalIncluded, included)
	}
	if res.AggregateTps <= 0 || res.SlowestTps <= 0 {
		t.Fatalf("aggregate tps %v / slowest %v not positive", res.AggregateTps, res.SlowestTps)
	}
}

// TestMultiSoakDiscoveryReport pins the DHT discovery phase: valid OLC
// codes, one sharded lookup per user, a per-shard split that sums to the
// total, the hypercube hop bound, and flat/sharded handle equivalence.
func TestMultiSoakDiscoveryReport(t *testing.T) {
	spec := multiSmokeSpec()
	o := obs.New()
	spec.Obs = o
	spec.DiscoveryShards = 3
	res, err := RunMultiSoak(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Discovery
	if !d.FlatEquivalent {
		t.Fatal("sharded discovery diverged from flat discovery")
	}
	if d.Shards != 3 {
		t.Fatalf("discovery shards %d, want 3", d.Shards)
	}
	if d.Lookups != uint64(spec.Users) {
		t.Fatalf("lookups %d, want one per user (%d)", d.Lookups, spec.Users)
	}
	var sum uint64
	for _, n := range d.PerShardLookups {
		sum += n
	}
	if sum != d.Lookups {
		t.Fatalf("per-shard lookups sum to %d, want %d", sum, d.Lookups)
	}
	if d.MaxHops > d.R {
		t.Fatalf("max hops %d exceeds the r=%d bound", d.MaxHops, d.R)
	}
	// The sharded counters surfaced through obs must agree with the report.
	var counted uint64
	for s := 0; s < d.Shards; s++ {
		counted += o.Registry.Counter("core_dht_discovery_total",
			obs.L("mode", "sharded"), obs.L("shard", strconv.Itoa(s))).Value()
	}
	if counted != d.Lookups {
		t.Fatalf("obs counters sum to %d, want %d", counted, d.Lookups)
	}
}

// TestMultiSoakAreaCodesAreValidOLC pins the discovery keyword alphabet:
// every synthesized area code must pass full-OLC validation, because the
// flat mode routes through the OLC dual encoding.
func TestMultiSoakAreaCodesAreValidOLC(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		code := multiSoakAreaCode(i)
		if err := olc.CheckFull(code); err != nil {
			t.Fatalf("area %d code %s: %v", i, code, err)
		}
		if seen[code] {
			t.Fatalf("area code %s repeats", code)
		}
		seen[code] = true
	}
}

// TestMultiSoakHandleMatchesDeployment pins the discovery/deploy identity
// contract: the handle the discovery phase derives for an area must be the
// handle the backend soak actually deploys (sequential EVM nonces,
// sequential Algorand app ids).
func TestMultiSoakHandleMatchesDeployment(t *testing.T) {
	seed := multiSoakSeed(42, ChainGoerli)
	h, err := multiSoakHandle(ChainGoerli, seed, 3)
	if err != nil {
		t.Fatal(err)
	}
	deployer := soakAccountEVM(soakKeyStream(seed))
	if want := chain.ContractAddress(deployer.Address, 3); h.EVMAddr != want {
		t.Fatalf("derived addr %x, deployment would use %x", h.EVMAddr, want)
	}
	ha, err := multiSoakHandle(ChainAlgorand, seed, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ha.AppID != 4 {
		t.Fatalf("derived app id %d, sequential deployment would use 4", ha.AppID)
	}
	if _, err := multiSoakHandle(ChainName("nope"), seed, 0); err == nil {
		t.Fatal("unknown chain must not derive a handle")
	}
}

// TestMultiSoakSpecValidation table-tests the rejections.
func TestMultiSoakSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*MultiSoakSpec)
	}{
		{"one backend", func(s *MultiSoakSpec) { s.Chains = []ChainName{ChainGoerli} }},
		{"duplicate backend", func(s *MultiSoakSpec) { s.Chains = []ChainName{ChainGoerli, ChainGoerli} }},
		{"unknown backend", func(s *MultiSoakSpec) { s.Chains = []ChainName{ChainGoerli, ChainName("base")} }},
		{"fewer areas than backends", func(s *MultiSoakSpec) { s.Areas = 2 }},
		{"fewer users than areas", func(s *MultiSoakSpec) { s.Users = 5 }},
		{"zero rounds", func(s *MultiSoakSpec) { s.Rounds = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := multiSmokeSpec()
			tc.mut(&spec)
			if _, err := RunMultiSoak(spec); err == nil {
				t.Fatalf("%s: spec accepted, want error", tc.name)
			}
		})
	}
}

// TestSoakFeesPaid pins the fee identity on a single-chain soak: funding
// minus final balance, summed over users, divided by included.
func TestSoakFeesPaid(t *testing.T) {
	for _, name := range []ChainName{ChainGoerli, ChainAlgorand} {
		res, err := RunSoak(SoakSpec{Chain: name, Areas: 2, Users: 4, Rounds: 3, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.FeesPaid.Base == nil || res.FeesPaid.Base.Sign() <= 0 {
			t.Fatalf("%s: fees paid %v not positive", name, res.FeesPaid)
		}
		if res.MeanFeeEuro <= 0 {
			t.Fatalf("%s: mean fee %v not positive", name, res.MeanFeeEuro)
		}
		wantUnit := map[ChainName]string{ChainGoerli: "ETH", ChainAlgorand: "ALGO"}[name]
		if res.FeesPaid.Unit.Name != wantUnit {
			t.Fatalf("%s: fee unit %q, want %q", name, res.FeesPaid.Unit.Name, wantUnit)
		}
	}
}
