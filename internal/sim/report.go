package sim

import (
	"fmt"
	"strings"

	"agnopol/internal/stats"
)

// TableRow is one chain's row in Tables 5.1–5.4.
type TableRow struct {
	Testnet string
	Mean    float64
	Max     float64
	Min     float64
	StdDev  float64
	Fees    string
	Euro    float64
}

// Table is a reproduced thesis table.
type Table struct {
	Caption string
	Op      string // "deploy" | "attach"
	Users   int
	Rows    []TableRow
}

// String renders the table in the thesis format.
func (t *Table) String() string {
	headers := []string{"Testnet", "Mean", "Max", "Min", "Dev Std", "Fees", "Euro"}
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Testnet,
			stats.FormatSeconds(r.Mean),
			stats.FormatSeconds(r.Max),
			stats.FormatSeconds(r.Min),
			stats.FormatSeconds(r.StdDev),
			r.Fees,
			fmt.Sprintf("€%.4g", r.Euro),
		})
	}
	return fmt.Sprintf("%s\n%s", t.Caption, stats.Table(headers, rows))
}

// summaryOf picks the series for an operation.
func summaryOf(r *Result, op string) (stats.Summary, string, float64) {
	switch op {
	case "deploy":
		return r.DeploySummary, r.DeployFees.String(), r.DeployFees.Euros()
	default:
		return r.AttachSummary, r.AttachFees.String(), r.AttachFees.Euros()
	}
}

// BuildTable reproduces one of Tables 5.1–5.4: the given operation with the
// given user count, one row per chain. Results for the three chains must
// come from runs with the same user count.
func BuildTable(op string, users int, results map[ChainName]*Result) *Table {
	num := map[string]string{
		"deploy16": "Table 5.1", "deploy32": "Table 5.2",
		"attach16": "Table 5.3", "attach32": "Table 5.4",
	}[fmt.Sprintf("%s%d", op, users)]
	if num == "" {
		num = "Table"
	}
	t := &Table{
		Caption: fmt.Sprintf("%s — performances of the %s operation, with %d users", num, op, users),
		Op:      op,
		Users:   users,
	}
	label := map[ChainName]string{
		ChainGoerli: "Goerli", ChainPolygon: "Polygon", ChainAlgorand: "Algorand",
		ChainRopsten: "Ropsten",
	}
	for _, c := range AllChains {
		r, ok := results[c]
		if !ok {
			continue
		}
		s, fees, euro := summaryOf(r, op)
		t.Rows = append(t.Rows, TableRow{
			Testnet: label[c],
			Mean:    s.Mean, Max: s.Max, Min: s.Min, StdDev: s.StdDev,
			Fees: fees, Euro: euro,
		})
	}
	return t
}

// Figure is a reproduced per-user bar figure (Figs. 5.2–5.5).
type Figure struct {
	Caption string
	Chain   ChainName
	Users   int
	// Values[i] is user i's total interaction time in seconds; the first
	// Users/UsersPerContract entries are deploys.
	Values   []float64
	Deployed []bool
}

// FigureFromResult converts a run into a figure.
func FigureFromResult(caption string, r *Result) *Figure {
	f := &Figure{Caption: caption, Chain: r.Chain, Users: r.Users}
	f.Values = make([]float64, len(r.Measurements))
	f.Deployed = make([]bool, len(r.Measurements))
	for _, m := range r.Measurements {
		f.Values[m.User] = m.Latency.Seconds()
		f.Deployed[m.User] = m.Deployed
	}
	return f
}

// String renders the figure as an ASCII bar chart, deploys marked with *.
func (f *Figure) String() string {
	labels := make([]string, len(f.Values))
	for i := range f.Values {
		mark := " "
		if f.Deployed[i] {
			mark = "*" // deploy bars, like the first bars of the figures
		}
		labels[i] = fmt.Sprintf("user %2d%s", i, mark)
	}
	var sb strings.Builder
	sb.WriteString(stats.BarChart(f.Caption, labels, f.Values, "s"))
	sb.WriteString("  (* = deploy operation)\n")
	return sb.String()
}

// FigureCaptions maps the thesis figure numbers to chain and user count.
type FigureSpec struct {
	ID    string
	Chain ChainName
	Users int
}

// FigureSpecs enumerates Figs. 5.2–5.5 (a–d).
var FigureSpecs = []FigureSpec{
	{ID: "Fig 5.2 — Ethereum Ropsten testnet: performance of 8 transactions", Chain: ChainRopsten, Users: 8},
	{ID: "Fig 5.3a — Goerli: performances with 8 users", Chain: ChainGoerli, Users: 8},
	{ID: "Fig 5.3b — Goerli: performances with 16 users", Chain: ChainGoerli, Users: 16},
	{ID: "Fig 5.3c — Goerli: performances with 24 users", Chain: ChainGoerli, Users: 24},
	{ID: "Fig 5.3d — Goerli: performances with 32 users", Chain: ChainGoerli, Users: 32},
	{ID: "Fig 5.4a — Polygon: performances with 8 users", Chain: ChainPolygon, Users: 8},
	{ID: "Fig 5.4b — Polygon: performances with 16 users", Chain: ChainPolygon, Users: 16},
	{ID: "Fig 5.4c — Polygon: performances with 24 users", Chain: ChainPolygon, Users: 24},
	{ID: "Fig 5.4d — Polygon: performances with 32 users", Chain: ChainPolygon, Users: 32},
	{ID: "Fig 5.5a — Algorand: performances with 8 users", Chain: ChainAlgorand, Users: 8},
	{ID: "Fig 5.5b — Algorand: performances with 16 users", Chain: ChainAlgorand, Users: 16},
	{ID: "Fig 5.5c — Algorand: performances with 24 users", Chain: ChainAlgorand, Users: 24},
	{ID: "Fig 5.5d — Algorand: performances with 32 users", Chain: ChainAlgorand, Users: 32},
}

// RunFigure executes the run behind one figure spec.
func RunFigure(spec FigureSpec, seed uint64) (*Figure, *Result, error) {
	r, err := Run(spec.Chain, spec.Users, seed)
	if err != nil {
		return nil, nil, err
	}
	return FigureFromResult(spec.ID, r), r, nil
}

// RunTables executes the runs behind Tables 5.1–5.4 and returns them in
// order (deploy16, deploy32, attach16, attach32). The same runs feed the
// deploy and attach tables, as in the thesis.
func RunTables(seed uint64) ([]*Table, map[int]map[ChainName]*Result, error) {
	return RunTablesObserved(seed, nil)
}
