package sim

import (
	"testing"
)

// TestSoakCheckpointResumeBitIdentical is the headline crash-safety gate
// at the harness level: a soak stopped mid-run and resumed from its
// diskstore checkpoint must land on exactly the digest, state root and
// block count of a soak that never stopped — on both chain families, and
// even when the resumed process picks a different shard count.
func TestSoakCheckpointResumeBitIdentical(t *testing.T) {
	for _, c := range []ChainName{ChainGoerli, ChainAlgorand} {
		c := c
		t.Run(string(c), func(t *testing.T) {
			spec := SoakSpec{Chain: c, Areas: 3, Users: 6, Rounds: 6, Shards: 2, Seed: 42}
			full, err := RunSoak(spec)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			withState := spec
			withState.StateDir = dir
			withState.CheckpointEvery = 2
			withState.StopAfterRounds = 3
			stopped, err := RunSoak(withState)
			if err != nil {
				t.Fatal(err)
			}
			if !stopped.Stopped {
				t.Fatal("run should have stopped at StopAfterRounds")
			}
			if stopped.Digest == full.Digest {
				t.Fatal("a stopped run cannot already match the full run's digest")
			}

			resumed, err := RunSoak(SoakSpec{StateDir: dir, Resume: true, Shards: 4, CheckpointEvery: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !resumed.Resumed {
				t.Fatal("result should be marked resumed")
			}
			if resumed.Digest != full.Digest {
				t.Fatalf("resumed digest %x diverges from uninterrupted %x", resumed.Digest, full.Digest)
			}
			if resumed.StateRoot != full.StateRoot {
				t.Fatal("resumed state root diverges from uninterrupted run")
			}
			if resumed.Blocks != full.Blocks {
				t.Fatalf("resumed run reports %d blocks, uninterrupted %d", resumed.Blocks, full.Blocks)
			}
			if resumed.Submitted != full.Submitted || resumed.Included != full.Included {
				t.Fatalf("resumed submitted/included %d/%d, uninterrupted %d/%d",
					resumed.Submitted, resumed.Included, full.Submitted, full.Included)
			}
		})
	}
}

// TestSoakResumeOfCompletedRunIsNoOp: resuming after the final (drained)
// checkpoint replays nothing and preserves the digest — the property that
// makes a kill arriving after completion harmless.
func TestSoakResumeOfCompletedRunIsNoOp(t *testing.T) {
	dir := t.TempDir()
	done, err := RunSoak(SoakSpec{
		Chain: ChainGoerli, Areas: 2, Users: 4, Rounds: 3, Shards: 2, Seed: 7,
		StateDir: dir, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunSoak(SoakSpec{StateDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != done.Digest || again.StateRoot != done.StateRoot {
		t.Fatal("resume of a completed run must be a digest-preserving no-op")
	}
	if again.Blocks != done.Blocks {
		t.Fatalf("no-op resume reports %d blocks, original %d", again.Blocks, done.Blocks)
	}
}

func TestSoakPersistValidation(t *testing.T) {
	if _, err := RunSoak(SoakSpec{Chain: ChainGoerli, Areas: 1, Users: 1, Rounds: 1, StopAfterRounds: 1}); err == nil {
		t.Fatal("StopAfterRounds without StateDir must be rejected")
	}
	if _, err := RunSoak(SoakSpec{Resume: true}); err == nil {
		t.Fatal("Resume without StateDir must be rejected")
	}

	dir := t.TempDir()
	spec := SoakSpec{Chain: ChainAlgorand, Areas: 2, Users: 2, Rounds: 2, Seed: 9, StateDir: dir}
	if _, err := RunSoak(spec); err != nil {
		t.Fatal(err)
	}
	// A fresh run must refuse a directory that already holds a committed soak.
	if _, err := RunSoak(spec); err == nil {
		t.Fatal("fresh run into a committed state dir must be rejected")
	}
	// A resume contradicting the manifest's workload shape must be rejected.
	if _, err := RunSoak(SoakSpec{StateDir: dir, Resume: true, Users: 99}); err == nil {
		t.Fatal("resume with mismatched users must be rejected")
	}
	if _, err := RunSoak(SoakSpec{StateDir: dir, Resume: true, Chain: ChainGoerli}); err == nil {
		t.Fatal("resume with mismatched chain must be rejected")
	}
	// A matching resume still works after the rejections above.
	if _, err := RunSoak(SoakSpec{StateDir: dir, Resume: true}); err != nil {
		t.Fatal(err)
	}
	// Resuming an empty state dir must fail cleanly.
	if _, err := RunSoak(SoakSpec{StateDir: t.TempDir(), Resume: true}); err == nil {
		t.Fatal("resume of an empty state dir must be rejected")
	}
}
