package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"agnopol/internal/obs"
)

// smallGrid keeps matrix tests fast: every chain at the smallest user
// count.
var smallGrid = []Cell{
	{Chain: ChainGoerli, Users: 8},
	{Chain: ChainPolygon, Users: 8},
	{Chain: ChainAlgorand, Users: 8},
}

// TestMatrixDeterministicAcrossParallelism is the engine's core
// guarantee: per-cell seeds derive from grid position, not scheduling,
// so a sequential run and a heavily over-subscribed parallel run must
// produce identical results run for run and summary for summary.
func TestMatrixDeterministicAcrossParallelism(t *testing.T) {
	spec := MatrixSpec{Cells: smallGrid, Reps: 2, Seed: 11, Parallel: 1}
	seq, err := RunMatrix(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallel = 8
	par, err := RunMatrix(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Summaries, par.Summaries) {
		t.Fatalf("summaries diverge across parallelism:\nseq: %+v\npar: %+v", seq.Summaries, par.Summaries)
	}
	for i := range seq.Runs {
		a, b := seq.Runs[i], par.Runs[i]
		if a.Seed != b.Seed || a.Cell != b.Cell || a.Rep != b.Rep {
			t.Fatalf("run %d grid slot diverged: %+v vs %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.Result.Measurements, b.Result.Measurements) {
			t.Fatalf("run %d measurements diverged across parallelism", i)
		}
	}
}

func TestMatrixSeedDerivation(t *testing.T) {
	seen := make(map[uint64]int)
	for idx := 0; idx < 64; idx++ {
		s := deriveSeed(7, idx)
		if prev, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d derived the same seed %d", prev, idx, s)
		}
		seen[s] = idx
	}
	if deriveSeed(7, 0) == deriveSeed(8, 0) {
		t.Fatal("different base seeds derived the same cell seed")
	}
	if deriveSeed(7, 3) != deriveSeed(7, 3) {
		t.Fatal("derivation is not a pure function of (base, index)")
	}
}

func TestMatrixAggregation(t *testing.T) {
	res, err := RunMatrix(MatrixSpec{
		Cells: []Cell{{Chain: ChainAlgorand, Users: 8}}, Reps: 3, Seed: 5, Parallel: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 || len(res.Summaries) != 1 {
		t.Fatalf("runs=%d summaries=%d, want 3/1", len(res.Runs), len(res.Summaries))
	}
	s := res.Summaries[0]
	// 8 users → 2 deploys and 6 attaches per rep, pooled over 3 reps.
	if s.Deploy.N != 6 || s.Attach.N != 18 {
		t.Fatalf("pooled N = %d/%d, want 6/18", s.Deploy.N, s.Attach.N)
	}
	// Mean-of-means: every rep has the same sample count, so the pooled
	// mean must equal the arithmetic mean of the per-rep means.
	var meanOfMeans float64
	lo, hi := res.Runs[0].Result.AttachSummary.Min, res.Runs[0].Result.AttachSummary.Max
	for _, r := range res.Runs {
		meanOfMeans += r.Result.AttachSummary.Mean / float64(len(res.Runs))
		if r.Result.AttachSummary.Min < lo {
			lo = r.Result.AttachSummary.Min
		}
		if r.Result.AttachSummary.Max > hi {
			hi = r.Result.AttachSummary.Max
		}
	}
	if diff := s.Attach.Mean - meanOfMeans; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("pooled mean %v != mean of rep means %v", s.Attach.Mean, meanOfMeans)
	}
	if s.Attach.Min != lo || s.Attach.Max != hi {
		t.Errorf("envelope [%v,%v], want [%v,%v]", s.Attach.Min, s.Attach.Max, lo, hi)
	}
	// Cross-seed dispersion must cover at least the widest single rep.
	for _, r := range res.Runs {
		if s.Attach.StdDev < r.Result.AttachSummary.StdDev*0.5 {
			t.Errorf("pooled σ %v implausibly below rep σ %v", s.Attach.StdDev, r.Result.AttachSummary.StdDev)
		}
	}
	if !strings.Contains(res.String(), "algorand") {
		t.Error("matrix rendering missing chain row")
	}
}

func TestMatrixPropagatesCellError(t *testing.T) {
	_, err := RunMatrix(MatrixSpec{
		Cells: []Cell{{Chain: "fantasy", Users: 8}}, Seed: 1, Parallel: 2,
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "fantasy") {
		t.Fatalf("unknown chain not surfaced: %v", err)
	}
}

// TestMatrixObservedConcurrently runs the matrix against one shared obs
// bundle at high parallelism — the span scopes, registry and profiles
// all see concurrent writers. Run under -race by scripts/check.sh; here
// we assert every experiment's span tree stayed separate and correctly
// rooted.
func TestMatrixObservedConcurrently(t *testing.T) {
	o := obs.New()
	res, err := RunMatrix(MatrixSpec{Cells: smallGrid, Reps: 2, Seed: 3, Parallel: 6}, o)
	if err != nil {
		t.Fatal(err)
	}
	roots := 0
	byID := make(map[uint64]*obs.Span)
	spans := o.Tracer.Spans()
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Name == "sim.experiment" {
			roots++
			if s.ParentID != 0 {
				t.Errorf("experiment span %d has parent %d, want root", s.ID, s.ParentID)
			}
		}
		if s.Name == "sim.user" {
			parent, ok := byID[s.ParentID]
			if !ok || parent.Name != "sim.experiment" {
				t.Errorf("sim.user span %d not parented under sim.experiment", s.ID)
			}
		}
	}
	if want := len(res.Runs); roots != want {
		t.Errorf("experiment root spans = %d, want %d", roots, want)
	}
}

// TestUserErrorEndsSpan is the regression test for the headline bugfix:
// a user failing mid-experiment must not leave its sim.user span open.
// Before the fix the error path skipped End, wedging the tracer on the
// dead span — every later span mis-parented under it and the failed span
// never reached the ring buffer.
func TestUserErrorEndsSpan(t *testing.T) {
	injected := errors.New("injected fault")
	userFault = func(seq int) error {
		if seq == 2 {
			return injected
		}
		return nil
	}
	defer func() { userFault = nil }()

	o := obs.New()
	_, err := RunObserved(ChainAlgorand, 8, 7, o)
	if !errors.Is(err, injected) {
		t.Fatalf("injected fault did not surface: %v", err)
	}
	userFault = nil

	spans := o.Tracer.Spans()
	var failed *obs.Span
	experiments := 0
	for _, s := range spans {
		if s.Name == "sim.experiment" {
			experiments++
		}
		if s.Name != "sim.user" {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "error" && strings.Contains(l.Value, "injected fault") {
				failed = s
			}
		}
	}
	if failed == nil {
		t.Fatal("failed sim.user span never reached the ring buffer or lost its error label")
	}
	if experiments != 1 {
		t.Fatalf("sim.experiment spans recorded = %d, want 1 (span left open?)", experiments)
	}

	// Subsequent spans must not orphan under the dead span: a fresh
	// implicit span must be a root, and a whole follow-up experiment on
	// the same bundle must root and nest cleanly.
	probe := o.Tracer.Start("probe")
	if probe.ParentID != 0 {
		t.Fatalf("span after the failure parented under %d, want root", probe.ParentID)
	}
	probe.End()
	if _, err := RunObserved(ChainAlgorand, 8, 7, o); err != nil {
		t.Fatal(err)
	}
	byID := make(map[uint64]*obs.Span)
	for _, s := range o.Tracer.Spans() {
		byID[s.ID] = s
	}
	users := 0
	for _, s := range o.Tracer.Spans() {
		if s.ID <= probe.ID || s.Name != "sim.user" {
			continue
		}
		users++
		parent, ok := byID[s.ParentID]
		if !ok || parent.Name != "sim.experiment" {
			t.Errorf("post-failure sim.user span %d mis-parented (parent %d)", s.ID, s.ParentID)
		}
	}
	if users != 8 {
		t.Errorf("follow-up run recorded %d sim.user spans, want 8", users)
	}
}

// TestRunWithVerifyObservedInstruments checks the refactored verify
// entry point rides the shared collection path: the PR-1 spans and
// histograms show up, including the verification phase's.
func TestRunWithVerifyObservedInstruments(t *testing.T) {
	o := obs.New()
	r, err := RunWithVerifyObserved(ChainAlgorand, 8, 7, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accepted != 8 {
		t.Fatalf("accepted = %d, want 8", r.Accepted)
	}
	names := make(map[string]int)
	for _, s := range o.Tracer.Spans() {
		names[s.Name]++
	}
	if names["sim.user"] != 8 {
		t.Errorf("sim.user spans = %d, want 8", names["sim.user"])
	}
	if names["pol.verify"] != 8 {
		t.Errorf("pol.verify spans = %d, want 8", names["pol.verify"])
	}
	if names["sim.experiment"] != 1 {
		t.Errorf("sim.experiment spans = %d, want 1", names["sim.experiment"])
	}
	text := o.Registry.Text()
	for _, want := range []string{
		`core_chain_op_latency_seconds_count{op="verify"} 8`,
		`core_chain_op_latency_seconds_count{op="attach"} 6`,
		`core_verifications_total{result="accepted"} 8`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestVerifyMatchesRunCollection pins the refactor: the collection phase
// of RunWithVerify is the exact code path of Run, so their measurements
// must be identical for the same seed.
func TestVerifyMatchesRunCollection(t *testing.T) {
	plain, err := Run(ChainAlgorand, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	withVerify, err := RunWithVerify(ChainAlgorand, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The verifier's wallet funding precedes the prover accounts, so the
	// chains diverge in balances but not in structure: both entry points
	// must agree on counts and deploy/attach split.
	if plain.DeploySummary.N != withVerify.DeploySummary.N ||
		plain.AttachSummary.N != withVerify.AttachSummary.N {
		t.Fatalf("split diverged: %d/%d vs %d/%d",
			plain.DeploySummary.N, plain.AttachSummary.N,
			withVerify.DeploySummary.N, withVerify.AttachSummary.N)
	}
	for i, m := range withVerify.Measurements {
		if m.OLC != plain.Measurements[i].OLC || m.Deployed != plain.Measurements[i].Deployed {
			t.Fatalf("measurement %d diverged: %+v vs %+v", i, m, plain.Measurements[i])
		}
	}
}
