package sim

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"agnopol/internal/faults"
	"agnopol/internal/obs"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

var includedRe = regexp.MustCompile(`(?m)^eth_txs_included_total\{[^}]*\} (\d+)$`)

// TestSoakServeLiveEndpoints runs a soak with the telemetry server
// attached and scrapes it from an in-test HTTP client while the soak is
// still executing: /metrics must show the inclusion counter climbing
// across scrapes (not just a final value), /timeseries must accumulate
// points, and /health must answer 200 on a healthy run.
func TestSoakServeLiveEndpoints(t *testing.T) {
	o := obs.New()
	tel := obs.NewTelemetry(o, 0, DefaultSLORules())
	srv, err := obs.Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	done := make(chan error, 1)
	go func() {
		_, err := RunSoak(SoakSpec{
			Chain: ChainGoerli, Areas: 8, Users: 32, Rounds: 600,
			Shards: 2, Seed: 7, Obs: o, Telemetry: tel,
		})
		done <- err
	}()

	// Scrape continuously until the soak exits, collecting the distinct
	// values the inclusion counter exposed.
	seen := map[uint64]bool{}
	running := true
	for running {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		default:
			_, body := scrape(t, base+"/metrics")
			if m := includedRe.FindStringSubmatch(body); m != nil {
				v, _ := strconv.ParseUint(m[1], 10, 64)
				seen[v] = true
			}
		}
	}
	_, body := scrape(t, base+"/metrics")
	if m := includedRe.FindStringSubmatch(body); m != nil {
		v, _ := strconv.ParseUint(m[1], 10, 64)
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Fatalf("mid-run /metrics scrapes saw only %d distinct inclusion counts %v — endpoint is not live", len(seen), seen)
	}

	code, body := scrape(t, base+"/timeseries")
	if code != 200 {
		t.Fatalf("/timeseries: %d", code)
	}
	var ts struct {
		Samples uint64 `json:"samples"`
		Series  []struct {
			ID     string            `json:"id"`
			Points []json.RawMessage `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &ts); err != nil {
		t.Fatalf("/timeseries JSON: %v", err)
	}
	if ts.Samples < 2 {
		t.Fatalf("/timeseries samples = %d, want one per round", ts.Samples)
	}
	multi := false
	for _, s := range ts.Series {
		if len(s.Points) >= 2 {
			multi = true
			break
		}
	}
	if !multi {
		t.Fatal("/timeseries has no series with two or more points")
	}

	code, body = scrape(t, base+"/health")
	if code != 200 {
		t.Fatalf("/health on a healthy soak: %d\n%s", code, body)
	}
	code, _ = scrape(t, base+"/trace")
	if code != 200 {
		t.Fatalf("/trace: %d", code)
	}
}

// TestFaultStormTripsSLO is the flight-recorder acceptance path: a matrix
// run under a heavy fault plan must trip an SLO rule, flip the health
// verdict, and produce a HEALTH_report.json bundle carrying the breaching
// series' recent deltas and the tracer's recent spans.
func TestFaultStormTripsSLO(t *testing.T) {
	// 0.3 keeps every class firing constantly while staying inside what
	// the 8-attempt submission pipeline can absorb (0.3^8 ≈ 7e-5 residual
	// failure per submission).
	plan, err := faults.Profile("default", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	// A recovery floor above 1 cannot be met once any fault fires, so the
	// storm deterministically breaches on the first evaluated sample.
	tel := obs.NewTelemetry(o, 0, []obs.Rule{{
		Name: "fault_recovery_floor", Kind: obs.RuleRatioMin,
		Series: "faults_recovered_total", Denominator: "faults_injected_total",
		Threshold: 1.1, Grace: 0,
	}})
	_, err = RunMatrix(MatrixSpec{
		Cells: []Cell{{Chain: ChainGoerli, Users: 8}},
		Reps:  3, Seed: 7, Parallel: 1,
		Faults: plan, Verify: true, Telemetry: tel,
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Health.Healthy() {
		t.Fatal("fault storm did not trip the SLO rule")
	}

	path := filepath.Join(t.TempDir(), "HEALTH_report.json")
	if err := tel.Health.WriteReportFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.HealthReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("HEALTH_report.json: %v", err)
	}
	if rep.Healthy || rep.TotalBreaches == 0 || len(rep.Anomalies) == 0 {
		t.Fatalf("report = healthy=%v breaches=%d anomalies=%d, want a breach record",
			rep.Healthy, rep.TotalBreaches, len(rep.Anomalies))
	}
	withDeltas, withSpans := false, false
	for _, a := range rep.Anomalies {
		if a.Rule.Name != "fault_recovery_floor" {
			t.Fatalf("unexpected breaching rule %q", a.Rule.Name)
		}
		for id, ds := range a.Deltas {
			if strings.HasPrefix(id, "faults_injected_total") && len(ds) > 0 {
				withDeltas = true
			}
		}
		if len(a.Spans) > 0 {
			withSpans = true
		}
	}
	if !withDeltas {
		t.Error("no anomaly bundle carries the breaching series' recent deltas")
	}
	if !withSpans {
		t.Error("no anomaly bundle carries recent spans")
	}
}

func timeSoak(tb testing.TB, withTelemetry bool) float64 {
	tb.Helper()
	o := obs.New()
	var tel *obs.Telemetry
	if withTelemetry {
		tel = obs.NewTelemetry(o, 0, DefaultSLORules())
	}
	res, err := RunSoak(SoakSpec{
		Chain: ChainGoerli, Areas: 4, Users: 16, Rounds: 40,
		Shards: 2, Seed: 7, Obs: o, Telemetry: tel,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return res.TxsPerSecWall()
}

// TestTelemetryOverheadOnSoak bounds the per-round sampling cost: soak
// throughput with the sampler + health monitor ticking every round must
// stay within 5% of the telemetry-free run. Max-of-N on throughput (the
// analogue of min-of-N on wall time) damps scheduler noise, and the two
// configurations alternate order within each repetition so a monotonic
// drift of the host (thermal throttling, cache warm-up) cannot bias the
// comparison against whichever ran second.
func TestTelemetryOverheadOnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping timing comparison in -short mode")
	}
	const reps = 6
	baseTPS, telTPS := 0.0, 0.0
	for i := 0; i < reps; i++ {
		order := []bool{false, true}
		if i%2 == 1 {
			order = []bool{true, false}
		}
		for _, withTel := range order {
			tps := timeSoak(t, withTel)
			if withTel && tps > telTPS {
				telTPS = tps
			}
			if !withTel && tps > baseTPS {
				baseTPS = tps
			}
		}
	}
	t.Logf("soak throughput: bare %.0f txs/s, telemetry %.0f txs/s (%.1f%%)",
		baseTPS, telTPS, 100*telTPS/baseTPS)
	if telTPS < 0.95*baseTPS {
		t.Errorf("telemetry run reached %.0f txs/s, more than 5%% below the bare %.0f txs/s", telTPS, baseTPS)
	}
}

func BenchmarkSoakWithTelemetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := obs.New()
		tel := obs.NewTelemetry(o, 0, DefaultSLORules())
		if _, err := RunSoak(SoakSpec{
			Chain: ChainGoerli, Areas: 4, Users: 16, Rounds: 20,
			Shards: 2, Seed: 7, Obs: o, Telemetry: tel,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
