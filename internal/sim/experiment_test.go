package sim

import (
	"strings"
	"testing"
)

func run16(t *testing.T, c ChainName) *Result {
	t.Helper()
	r, err := Run(c, 16, 7)
	if err != nil {
		t.Fatalf("Run(%s): %v", c, err)
	}
	return r
}

func TestRunStructure(t *testing.T) {
	r := run16(t, ChainAlgorand)
	if len(r.Measurements) != 16 {
		t.Fatalf("measurements = %d", len(r.Measurements))
	}
	deploys, attaches := 0, 0
	for _, m := range r.Measurements {
		if m.Latency <= 0 {
			t.Fatalf("user %d latency %v", m.User, m.Latency)
		}
		if m.Deployed {
			deploys++
			// Deployers come first in the thesis figures.
			if m.User >= 4 {
				t.Fatalf("deploy at sequence position %d", m.User)
			}
		} else {
			attaches++
		}
	}
	if deploys != 4 || attaches != 12 {
		t.Fatalf("deploys=%d attaches=%d, want 4/12", deploys, attaches)
	}
	if r.DeploySummary.N != 4 || r.AttachSummary.N != 12 {
		t.Fatalf("summaries %d/%d", r.DeploySummary.N, r.AttachSummary.N)
	}
}

func TestRunValidatesParameters(t *testing.T) {
	if _, err := Run(ChainGoerli, 5, 1); err == nil {
		t.Fatal("non-multiple-of-4 user count accepted")
	}
	if _, err := Run(ChainGoerli, 64, 1); err == nil {
		t.Fatal("more contracts than thesis locations accepted")
	}
	if _, err := NewConnector("fantasy", 1); err == nil {
		t.Fatal("unknown chain accepted")
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	a, err := Run(ChainAlgorand, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ChainAlgorand, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeploySummary != b.DeploySummary || a.AttachSummary != b.AttachSummary {
		t.Fatal("same seed produced different results")
	}
}

// TestPaperShape asserts the qualitative findings of §5.1.5 hold in the
// simulator:
//
//  1. attach latency: Algorand < Polygon < Goerli;
//  2. deploy latency: Polygon < Algorand < Goerli (the crossover — Algorand
//     deploys slower than Polygon because of its extra deployment traffic,
//     but attaches faster);
//  3. stability: Algorand's dispersion is far below the EVM chains';
//  4. fees in euro: Goerli ≫ Polygon, Algorand (both sub-cent);
//  5. Algorand deploy ≈ 2× its attach.
func TestPaperShape(t *testing.T) {
	goerli := run16(t, ChainGoerli)
	polygon := run16(t, ChainPolygon)
	algorand := run16(t, ChainAlgorand)

	// 1. Attach ordering.
	if !(algorand.AttachSummary.Mean < polygon.AttachSummary.Mean &&
		polygon.AttachSummary.Mean < goerli.AttachSummary.Mean) {
		t.Fatalf("attach ordering violated: algo=%.1f poly=%.1f goerli=%.1f",
			algorand.AttachSummary.Mean, polygon.AttachSummary.Mean, goerli.AttachSummary.Mean)
	}
	// 2. Deploy ordering with the crossover.
	if !(polygon.DeploySummary.Mean < algorand.DeploySummary.Mean &&
		algorand.DeploySummary.Mean < goerli.DeploySummary.Mean) {
		t.Fatalf("deploy ordering violated: poly=%.1f algo=%.1f goerli=%.1f",
			polygon.DeploySummary.Mean, algorand.DeploySummary.Mean, goerli.DeploySummary.Mean)
	}
	// 3. Stability.
	if algorand.AttachSummary.StdDev >= polygon.AttachSummary.StdDev ||
		algorand.AttachSummary.StdDev >= goerli.AttachSummary.StdDev {
		t.Fatalf("algorand attach σ=%.2f not the smallest (poly %.2f, goerli %.2f)",
			algorand.AttachSummary.StdDev, polygon.AttachSummary.StdDev, goerli.AttachSummary.StdDev)
	}
	if algorand.DeploySummary.StdDev >= goerli.DeploySummary.StdDev {
		t.Fatalf("algorand deploy σ=%.2f not below goerli's %.2f",
			algorand.DeploySummary.StdDev, goerli.DeploySummary.StdDev)
	}
	// 4. Fees.
	goerliEur := goerli.DeployFees.Euros() + goerli.AttachFees.Euros()
	polygonEur := polygon.DeployFees.Euros() + polygon.AttachFees.Euros()
	algorandEur := algorand.DeployFees.Euros() + algorand.AttachFees.Euros()
	if goerliEur < 10 {
		t.Fatalf("goerli fees €%.2f implausibly low", goerliEur)
	}
	if polygonEur > 0.05 || algorandEur > 0.05 {
		t.Fatalf("cheap chains not cheap: polygon €%.4f algorand €%.4f", polygonEur, algorandEur)
	}
	// 5. Algorand deploy ≈ 2× attach (paper: 28.53 vs 14.54).
	ratio := algorand.DeploySummary.Mean / algorand.AttachSummary.Mean
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("algorand deploy/attach ratio %.2f, want ≈2", ratio)
	}
}

// TestPaperMagnitudes pins the headline numbers to the paper's bands
// (generous tolerances — the paper's own two runs differ this much).
func TestPaperMagnitudes(t *testing.T) {
	goerli := run16(t, ChainGoerli)
	polygon := run16(t, ChainPolygon)
	algorand := run16(t, ChainAlgorand)

	within := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %.2fs outside paper band [%.1f, %.1f]", name, got, lo, hi)
		}
	}
	within("goerli deploy", goerli.DeploySummary.Mean, 40, 75)     // paper 54.4–56.15
	within("goerli attach", goerli.AttachSummary.Mean, 20, 45)     // paper 25.56–35.95
	within("polygon deploy", polygon.DeploySummary.Mean, 18, 30)   // paper 23.44–25.78
	within("polygon attach", polygon.AttachSummary.Mean, 14, 25)   // paper 19.35–20.6
	within("algorand deploy", algorand.DeploySummary.Mean, 26, 32) // paper 28.53–28.93
	within("algorand attach", algorand.AttachSummary.Mean, 13, 16) // paper 14.54
	if algorand.AttachSummary.StdDev > 0.6 {
		t.Errorf("algorand attach σ=%.2f, paper reports ~0.31", algorand.AttachSummary.StdDev)
	}
}

func TestBuildTableRendering(t *testing.T) {
	results := map[ChainName]*Result{
		ChainGoerli:   run16(t, ChainGoerli),
		ChainPolygon:  run16(t, ChainPolygon),
		ChainAlgorand: run16(t, ChainAlgorand),
	}
	tbl := BuildTable("deploy", 16, results)
	out := tbl.String()
	for _, want := range []string{"Table 5.1", "Goerli", "Polygon", "Algorand", "Dev Std", "Euro"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFigureRendering(t *testing.T) {
	r := run16(t, ChainAlgorand)
	f := FigureFromResult("Fig 5.5b — Algorand: performances with 16 users", r)
	out := f.String()
	if !strings.Contains(out, "user  0*") {
		t.Fatalf("first user not marked as deploy:\n%s", out)
	}
	if !strings.Contains(out, "deploy operation") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if len(f.Values) != 16 {
		t.Fatalf("values = %d", len(f.Values))
	}
}

func TestFigureSpecsCoverPaper(t *testing.T) {
	// 1 Ropsten + 4 Goerli + 4 Polygon + 4 Algorand = 13 panels.
	if len(FigureSpecs) != 13 {
		t.Fatalf("figure specs = %d, want 13", len(FigureSpecs))
	}
	users := map[int]bool{}
	for _, s := range FigureSpecs {
		users[s.Users] = true
	}
	for _, u := range []int{8, 16, 24, 32} {
		if !users[u] {
			t.Fatalf("no figure with %d users", u)
		}
	}
}

// TestVerifySimilarToAttach checks the §5.1 claim that justified excluding
// verification from the measurements: "the verify operation is similar to
// the attachment since it is a basic API call to the contract".
func TestVerifySimilarToAttach(t *testing.T) {
	for _, c := range []ChainName{ChainAlgorand, ChainPolygon} {
		r, err := RunWithVerify(c, 8, 7)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if r.Accepted != 8 {
			t.Fatalf("%s: %d/8 verifications accepted", c, r.Accepted)
		}
		ratio := r.VerifySummary.Mean / r.AttachSummary.Mean
		if ratio < 0.6 || ratio > 1.6 {
			t.Fatalf("%s: verify/attach latency ratio %.2f (verify %.1fs, attach %.1fs) — paper expects them similar",
				c, ratio, r.VerifySummary.Mean, r.AttachSummary.Mean)
		}
	}
}

func TestRunFigureSpec(t *testing.T) {
	f, r, err := RunFigure(FigureSpecs[0], 7) // Fig 5.2, Ropsten, 8 users
	if err != nil {
		t.Fatal(err)
	}
	if f.Chain != ChainRopsten || f.Users != 8 || len(f.Values) != 8 {
		t.Fatalf("figure = %+v", f)
	}
	if r.DeploySummary.N != 2 || r.AttachSummary.N != 6 {
		t.Fatalf("8-user run: %d deploys, %d attaches", r.DeploySummary.N, r.AttachSummary.N)
	}
	// Fig 5.2's finding: Ropsten is slower/noisier than Goerli. A single
	// 8-user run is noisy, so compare aggregates over several seeds.
	var ropsten, goerli float64
	for seed := uint64(1); seed <= 4; seed++ {
		rr, err := Run(ChainRopsten, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		gg, err := Run(ChainGoerli, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		ropsten += rr.AttachSummary.Mean + rr.DeploySummary.Mean
		goerli += gg.AttachSummary.Mean + gg.DeploySummary.Mean
	}
	if ropsten <= goerli {
		t.Fatalf("ropsten aggregate %.1fs not above goerli %.1fs", ropsten, goerli)
	}
}
