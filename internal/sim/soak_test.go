package sim

import (
	"runtime"
	"testing"

	"agnopol/internal/obs"
)

func TestRunSoakValidatesSpec(t *testing.T) {
	if _, err := RunSoak(SoakSpec{Chain: ChainGoerli, Areas: 0, Users: 4, Rounds: 1}); err == nil {
		t.Fatal("zero areas must be rejected")
	}
	if _, err := RunSoak(SoakSpec{Chain: "nope", Areas: 1, Users: 1, Rounds: 1}); err == nil {
		t.Fatal("unknown chain must be rejected")
	}
}

func TestRunSoakBothChains(t *testing.T) {
	for _, c := range []ChainName{ChainGoerli, ChainAlgorand} {
		c := c
		t.Run(string(c), func(t *testing.T) {
			o := obs.New()
			r, err := RunSoak(SoakSpec{
				Chain: c, Areas: 4, Users: 8, Rounds: 3, Shards: 4, Seed: 11, Obs: o,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Submitted != 8*3 || r.Included != r.Submitted {
				t.Fatalf("submitted/included = %d/%d, want 24/24", r.Submitted, r.Included)
			}
			if r.Blocks == 0 || r.Simulated <= 0 {
				t.Fatalf("blocks=%d simulated=%v", r.Blocks, r.Simulated)
			}
			if r.TxsPerSecSimulated() <= 0 {
				t.Fatal("simulated throughput must be positive")
			}
			if len(r.Utilization) != 4 {
				t.Fatalf("utilization has %d entries, want 4", len(r.Utilization))
			}
			if r.ParallelBatches == 0 {
				t.Fatal("disjoint-area soak must fan out at least once")
			}
		})
	}
}

// TestSoakDeterministicAcrossShards is the soak-level bit-identity gate:
// the same spec at any shard count must land on the same chain digest.
func TestSoakDeterministicAcrossShards(t *testing.T) {
	for _, c := range []ChainName{ChainGoerli, ChainAlgorand} {
		c := c
		t.Run(string(c), func(t *testing.T) {
			base, err := RunSoak(SoakSpec{Chain: c, Areas: 4, Users: 8, Rounds: 3, Shards: 1, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4} {
				r, err := RunSoak(SoakSpec{Chain: c, Areas: 4, Users: 8, Rounds: 3, Shards: shards, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				if r.Digest != base.Digest {
					t.Fatalf("shards=%d digest diverges from the serial baseline", shards)
				}
				if r.Blocks != base.Blocks {
					t.Fatalf("shards=%d produced %d blocks, serial %d", shards, r.Blocks, base.Blocks)
				}
			}
		})
	}
}

// TestSoakDeterministicAcrossGOMAXPROCS pins the sharded soak's digest
// across scheduler widths: GOMAXPROCS=1 and GOMAXPROCS=N must agree
// bit-for-bit, so CI's multi-core runners and a single-core laptop produce
// the same chain.
func TestSoakDeterministicAcrossGOMAXPROCS(t *testing.T) {
	spec := SoakSpec{Chain: ChainGoerli, Areas: 4, Users: 8, Rounds: 3, Shards: 4, Seed: 7}
	wide, err := RunSoak(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	narrow, err := RunSoak(spec)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Digest != wide.Digest {
		t.Fatal("digest depends on GOMAXPROCS")
	}
	if narrow.Blocks != wide.Blocks || narrow.Included != wide.Included {
		t.Fatalf("block/tx counts depend on GOMAXPROCS: %d/%d vs %d/%d",
			narrow.Blocks, narrow.Included, wide.Blocks, wide.Included)
	}
}
