package sim

import (
	"encoding/json"
	"fmt"
	"time"

	"agnopol/internal/algorand"
	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/eth"
	"agnopol/internal/lang"
	"agnopol/internal/mstate"
	"agnopol/internal/mstate/diskstore"
	"agnopol/internal/polcrypto"
)

// soakCheckpointVersion guards the manifest-meta layout; a resumed process
// refuses manifests written by an incompatible harness.
const soakCheckpointVersion = 1

// soakCheckpoint is the JSON blob a persisted soak parks in the diskstore
// manifest's meta field next to the committed state root: the spec that
// produced the run plus everything the load loop needs to continue from
// the recorded round — the chain-level checkpoint, how many rounds and
// submissions are already behind us, and the measurement baselines
// (block height and simulated clock at load start) so the resumed result
// reports totals for the whole run, not just its own slice.
type soakCheckpoint struct {
	Version int
	Chain   ChainName
	Areas   int
	Users   int
	Rounds  int
	Shards  int
	Seed    uint64

	// RoundsDone is how many load rounds the run had completed when the
	// checkpoint was taken; a resumed process continues at this round.
	RoundsDone int
	// Submitted is the user-transaction count across all completed rounds,
	// including transactions still pending in the chain checkpoint.
	Submitted uint64
	// BlocksAtLoadStart and SimStart anchor the Blocks/Simulated result
	// fields to the original load start across any number of restarts.
	BlocksAtLoadStart uint64
	SimStart          time.Duration
	// Drained marks the post-drain final checkpoint: the run is complete
	// and resuming it is a digest-preserving no-op.
	Drained bool

	// Exactly one of Eth/Algo is set, matching Chain.
	Eth  *eth.Checkpoint      `json:",omitempty"`
	Algo *algorand.Checkpoint `json:",omitempty"`
}

// soakPersist writes soak checkpoints into a diskstore: commit the trie
// nodes, capture the chain checkpoint, and publish both atomically via the
// store's manifest. meta carries the static spec fields; the per-commit
// progress fields are stamped on each write.
type soakPersist struct {
	store *diskstore.Store
	meta  soakCheckpoint
}

func (p *soakPersist) commit(root mstate.Hash, roundsDone int, submitted uint64, drained bool) error {
	m := p.meta
	m.RoundsDone = roundsDone
	m.Submitted = submitted
	m.Drained = drained
	blob, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("sim: encode soak checkpoint: %w", err)
	}
	return p.store.Commit(root, blob)
}

func (p *soakPersist) commitEVM(c *eth.Chain, roundsDone int, submitted uint64, drained bool) error {
	ck, err := c.Checkpoint()
	if err != nil {
		return err
	}
	root, err := c.CommitState(p.store)
	if err != nil {
		return err
	}
	p.meta.Eth, p.meta.Algo = ck, nil
	return p.commit(root, roundsDone, submitted, drained)
}

func (p *soakPersist) commitAlgorand(c *algorand.Chain, roundsDone int, submitted uint64, drained bool) error {
	ck, err := c.Checkpoint()
	if err != nil {
		return err
	}
	root, err := c.CommitState(p.store)
	if err != nil {
		return err
	}
	p.meta.Eth, p.meta.Algo = nil, ck
	return p.commit(root, roundsDone, submitted, drained)
}

// soakRun carries the restart position through RunSoak's setup into the
// load loops. The zero value is a fresh, non-persisted run.
type soakRun struct {
	persist *soakPersist

	resumed           bool
	startRound        int
	submitted0        uint64
	blocksAtLoadStart uint64
	simStart          time.Duration

	// store/root and the chain-level checkpoint feed eth.Open /
	// algorand.Open when resuming.
	store *diskstore.Store
	root  mstate.Hash
	eth   *eth.Checkpoint
	algo  *algorand.Checkpoint
}

// loadSoakManifest reads the committed soak checkpoint out of an opened
// store and reconciles it with the caller's spec: the manifest is
// authoritative for the workload shape (chain, areas, users, rounds,
// seed), and any non-zero caller value that contradicts it is an error
// rather than a silently different workload. Shards may be overridden —
// the digest is shard-invariant by construction.
func loadSoakManifest(store *diskstore.Store, spec SoakSpec) (SoakSpec, *soakRun, error) {
	root, ok := store.Root()
	if !ok {
		return spec, nil, fmt.Errorf("sim: %s holds no committed soak state to resume", spec.StateDir)
	}
	var ck soakCheckpoint
	if err := json.Unmarshal(store.Meta(), &ck); err != nil {
		return spec, nil, fmt.Errorf("sim: decode soak manifest in %s: %w", spec.StateDir, err)
	}
	if ck.Version != soakCheckpointVersion {
		return spec, nil, fmt.Errorf("sim: soak manifest version %d, this harness speaks %d", ck.Version, soakCheckpointVersion)
	}
	if spec.Chain != "" && spec.Chain != ck.Chain {
		return spec, nil, fmt.Errorf("sim: resume chain %q does not match manifest chain %q", spec.Chain, ck.Chain)
	}
	for _, f := range []struct {
		name      string
		got, want int
	}{
		{"areas", spec.Areas, ck.Areas},
		{"users", spec.Users, ck.Users},
		{"rounds", spec.Rounds, ck.Rounds},
	} {
		if f.got != 0 && f.got != f.want {
			return spec, nil, fmt.Errorf("sim: resume %s=%d does not match manifest %s=%d", f.name, f.got, f.name, f.want)
		}
	}
	if spec.Seed != 0 && spec.Seed != ck.Seed {
		return spec, nil, fmt.Errorf("sim: resume seed=%d does not match manifest seed=%d", spec.Seed, ck.Seed)
	}
	spec.Chain = ck.Chain
	spec.Areas, spec.Users, spec.Rounds = ck.Areas, ck.Users, ck.Rounds
	spec.Seed = ck.Seed
	if spec.Shards < 1 {
		spec.Shards = ck.Shards
	}
	run := &soakRun{
		resumed:           true,
		startRound:        ck.RoundsDone,
		submitted0:        ck.Submitted,
		blocksAtLoadStart: ck.BlocksAtLoadStart,
		simStart:          ck.SimStart,
		store:             store,
		root:              root,
		eth:               ck.Eth,
		algo:              ck.Algo,
	}
	return spec, run, nil
}

// soakKeyStream is the soak-owned key-derivation stream: forked from the
// spec seed, never from the chain's own rng, so a resumed process can
// re-derive the exact same accounts without replaying the chain's stream.
// Draw order is fixed — the deployer first, then one user per index.
func soakKeyStream(seed uint64) *chain.Rand { return chain.NewRand(seed).Fork("soak:keys") }

func soakAccountEVM(rng *chain.Rand) *eth.Account {
	kp := polcrypto.MustGenerateKeyPair(rng)
	return &eth.Account{Key: kp, Address: chain.AddressFromPublicKey(kp.Public)}
}

func soakAccountAlgorand(rng *chain.Rand) *algorand.Account {
	kp := polcrypto.MustGenerateKeyPair(rng)
	return &algorand.Account{Key: kp, Address: chain.AddressFromPublicKey(kp.Public)}
}

// rebuildSoakRegistry reconstructs the area→contract directory of a
// resumed run without replaying the deployment: contract identities are a
// pure function of the spec — the i-th EVM contract lives at
// ContractAddress(deployer, i) because the deployer's nonces were
// sequential, and the i-th Algorand app is id i+1 because app ids are
// allocated sequentially from 1. A spot check verifies the derived
// handles actually exist in the loaded state.
func rebuildSoakRegistry(spec SoakSpec, conn core.Connector, reg *core.AreaRegistry, compiled *lang.Compiled) error {
	switch c := conn.(type) {
	case *core.EVMConnector:
		deployer := soakAccountEVM(soakKeyStream(spec.Seed))
		for i := 0; i < spec.Areas; i++ {
			h := &core.Handle{
				Connector: conn.Name(),
				EVMAddr:   chain.ContractAddress(deployer.Address, uint64(i)),
				Compiled:  compiled,
			}
			if err := reg.Register(soakAreaCode(i), h); err != nil {
				return err
			}
		}
		for _, i := range []int{0, spec.Areas - 1} {
			h, _ := reg.Lookup(soakAreaCode(i))
			if _, ok := c.Chain().ContractCode(h.EVMAddr); !ok {
				return fmt.Errorf("sim: resumed state holds no contract for area %s at %s", soakAreaCode(i), h.EVMAddr)
			}
		}
	case *core.AlgorandConnector:
		for i := 0; i < spec.Areas; i++ {
			h := &core.Handle{Connector: conn.Name(), AppID: uint64(i) + 1, Compiled: compiled}
			if err := reg.Register(soakAreaCode(i), h); err != nil {
				return err
			}
		}
		for _, i := range []int{0, spec.Areas - 1} {
			h, _ := reg.Lookup(soakAreaCode(i))
			if _, ok := c.Chain().App(h.AppID); !ok {
				return fmt.Errorf("sim: resumed state holds no app %d for area %s", h.AppID, soakAreaCode(i))
			}
		}
	default:
		return fmt.Errorf("sim: soak resume does not support connector %T", conn)
	}
	return nil
}
