package sim

import (
	"fmt"

	"agnopol/internal/core"
	"agnopol/internal/obs"
)

// InstrumentConnector attaches an observability bundle to the connector's
// underlying chain: metrics and logging for both families, plus the
// matching VM opcode profiler (EVM gas, AVM budget). A nil bundle or an
// unknown connector type is a no-op.
func InstrumentConnector(conn core.Connector, o *obs.Obs) {
	if o == nil {
		return
	}
	switch c := conn.(type) {
	case *core.EVMConnector:
		c.Chain().Instrument(o.Registry, o.EVMProfile, o.Logger)
	case *core.AlgorandConnector:
		c.Chain().Instrument(o.Registry, o.AVMProfile, o.Logger)
	}
}

// RunFigureObserved is RunFigure with an observability bundle threaded
// through the underlying run.
func RunFigureObserved(spec FigureSpec, seed uint64, o *obs.Obs) (*Figure, *Result, error) {
	r, err := RunObserved(spec.Chain, spec.Users, seed, o)
	if err != nil {
		return nil, nil, err
	}
	return FigureFromResult(spec.ID, r), r, nil
}

// RunTablesObserved is RunTables with an observability bundle threaded
// through every underlying run. Chain metrics accumulate in the shared
// registry, distinguished by their chain label.
func RunTablesObserved(seed uint64, o *obs.Obs) ([]*Table, map[int]map[ChainName]*Result, error) {
	byUsers := map[int]map[ChainName]*Result{16: {}, 32: {}}
	for _, users := range []int{16, 32} {
		for _, c := range AllChains {
			r, err := RunObserved(c, users, seed, o)
			if err != nil {
				return nil, nil, fmt.Errorf("sim: %s/%d users: %w", c, users, err)
			}
			byUsers[users][c] = r
		}
	}
	tables := []*Table{
		BuildTable("deploy", 16, byUsers[16]),
		BuildTable("deploy", 32, byUsers[32]),
		BuildTable("attach", 16, byUsers[16]),
		BuildTable("attach", 32, byUsers[32]),
	}
	return tables, byUsers, nil
}
