package sim

import (
	"fmt"

	"agnopol/internal/core"
	"agnopol/internal/obs"
)

// InstrumentConnector attaches an observability bundle to the connector's
// underlying chain: metrics and logging for both families, plus the
// matching VM opcode profiler (EVM gas, AVM budget). A nil bundle or an
// unknown connector type is a no-op.
func InstrumentConnector(conn core.Connector, o *obs.Obs) {
	if o == nil {
		return
	}
	switch c := conn.(type) {
	case *core.EVMConnector:
		c.Chain().Instrument(o.Registry, o.EVMProfile, o.Logger)
	case *core.AlgorandConnector:
		c.Chain().Instrument(o.Registry, o.AVMProfile, o.Logger)
	}
}

// DefaultSLORules are the stock health-monitor rules polbench attaches
// to -serve runs: a throughput floor, tail-latency ceilings, a rejection
// ceiling and a fault-recovery floor. Rules for families the run never
// touches simply never evaluate — the same set works for EVM presets,
// Algorand and fault sweeps.
func DefaultSLORules() []obs.Rule {
	return []obs.Rule{
		// Throughput floor: across a five-sample window at least one
		// transaction must land. A stalled soak — mempool wedged, executor
		// deadlocked — flatlines these counters and trips the rule; the
		// window tolerates the single empty block a base-fee spike can
		// legitimately produce, and the zero-progress final drain sample.
		{Name: "eth_throughput_floor", Kind: obs.RuleRateMin,
			Series: "eth_txs_included_total", Threshold: 1, Grace: 5, Window: 5},
		{Name: "algorand_throughput_floor", Kind: obs.RuleRateMin,
			Series: "algorand_groups_included_total", Threshold: 1, Grace: 5, Window: 5},
		// Tail-latency ceiling over the merged inclusion sketches, in
		// simulated seconds. The congestion-trimmed soak stays well under
		// a minute; five simulated minutes of p99 means sustained
		// congestion or a fault storm.
		{Name: "eth_tail_latency_ceiling", Kind: obs.RuleQuantileMax,
			Series: "eth_inclusion_latency", Quantile: 0.99, Threshold: 300, Grace: 2},
		{Name: "algorand_tail_latency_ceiling", Kind: obs.RuleQuantileMax,
			Series: "algorand_inclusion_latency", Quantile: 0.99, Threshold: 120, Grace: 2},
		// Rejection ceiling: the soak workload is valid by construction,
		// so any rejected group is an anomaly worth a flight record.
		{Name: "rejection_ceiling", Kind: obs.RuleRateMax,
			Series: "algorand_groups_rejected_total", Threshold: 0, Grace: 2},
		// Fault-recovery floor: cumulative recovered/injected across all
		// classes. Only evaluates once faults actually fire.
		{Name: "fault_recovery_floor", Kind: obs.RuleRatioMin,
			Series: "faults_recovered_total", Denominator: "faults_injected_total",
			Threshold: 0.5, Grace: 2},
	}
}

// RunFigureObserved is RunFigure with an observability bundle threaded
// through the underlying run.
func RunFigureObserved(spec FigureSpec, seed uint64, o *obs.Obs) (*Figure, *Result, error) {
	r, err := RunObserved(spec.Chain, spec.Users, seed, o)
	if err != nil {
		return nil, nil, err
	}
	return FigureFromResult(spec.ID, r), r, nil
}

// RunTablesObserved is RunTables with an observability bundle threaded
// through every underlying run. Chain metrics accumulate in the shared
// registry, distinguished by their chain label.
func RunTablesObserved(seed uint64, o *obs.Obs) ([]*Table, map[int]map[ChainName]*Result, error) {
	byUsers := map[int]map[ChainName]*Result{16: {}, 32: {}}
	for _, users := range []int{16, 32} {
		for _, c := range AllChains {
			r, err := RunObserved(c, users, seed, o)
			if err != nil {
				return nil, nil, fmt.Errorf("sim: %s/%d users: %w", c, users, err)
			}
			byUsers[users][c] = r
		}
	}
	tables := []*Table{
		BuildTable("deploy", 16, byUsers[16]),
		BuildTable("deploy", 32, byUsers[32]),
		BuildTable("attach", 16, byUsers[16]),
		BuildTable("attach", 32, byUsers[32]),
	}
	return tables, byUsers, nil
}
