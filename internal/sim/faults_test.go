package sim

import (
	"reflect"
	"testing"

	"agnopol/internal/faults"
	"agnopol/internal/obs"
)

// TestMatrixDeterministicAcrossParallelismWithFaults extends the engine's
// core guarantee to fault injection: every run's fault stream is a pure
// function of (derived seed, site, sequence), so a sequential sweep and an
// over-subscribed parallel sweep of the same faulty grid must agree run
// for run — injected delays, drops and retries included.
func TestMatrixDeterministicAcrossParallelismWithFaults(t *testing.T) {
	spec := MatrixSpec{
		Cells: smallGrid, Reps: 2, Seed: 11, Parallel: 1,
		Faults: faults.Uniform(0.3), Verify: true,
	}
	seq, err := RunMatrix(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallel = 8
	par, err := RunMatrix(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Summaries, par.Summaries) {
		t.Fatalf("faulty summaries diverge across parallelism:\nseq: %+v\npar: %+v", seq.Summaries, par.Summaries)
	}
	for i := range seq.Runs {
		if !reflect.DeepEqual(seq.Runs[i].Result.Measurements, par.Runs[i].Result.Measurements) {
			t.Fatalf("run %d measurements diverged across parallelism under faults", i)
		}
	}
}

// TestZeroRateFaultPlanMatchesNoFaultRun is the bit-identity regression:
// a zero-rate plan must leave every measurement exactly where the
// fault-free code path puts it — the injector consumes no randomness the
// chain would otherwise see, and the resilience layer adds no latency
// when nothing fails.
func TestZeroRateFaultPlanMatchesNoFaultRun(t *testing.T) {
	for _, chain := range AllChains {
		plain, err := Run(chain, 8, 21)
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := Execute(Spec{Chain: chain, Users: 8, Seed: 21, Faults: faults.Uniform(0)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Measurements, faulty.Measurements) {
			t.Fatalf("%s: zero-rate plan diverged from the no-fault run:\nplain:  %+v\nfaulty: %+v",
				chain, plain.Measurements, faulty.Measurements)
		}
		if !reflect.DeepEqual(plain.DeploySummary, faulty.DeploySummary) ||
			!reflect.DeepEqual(plain.AttachSummary, faulty.AttachSummary) {
			t.Fatalf("%s: zero-rate summaries diverged", chain)
		}
	}
}

// TestFaultSweepRecoversEveryRetryableClass runs the polbench reliability
// grid in miniature and asserts the obs registry shows every retryable
// fault class both injected and recovered — the pipeline survives the
// default profile end to end.
func TestFaultSweepRecoversEveryRetryableClass(t *testing.T) {
	o := obs.New()
	_, err := RunMatrix(MatrixSpec{
		Cells: smallGrid, Reps: 3, Seed: 7, Parallel: 4,
		Faults: faults.Uniform(0.3), Verify: true,
	}, o)
	if err != nil {
		t.Fatalf("pipeline did not survive the default fault profile: %v", err)
	}
	retryable := []string{
		faults.ClassTxDrop, faults.ClassWitnessDown,
		faults.ClassIPFSFetch, faults.ClassIPFSUnpin,
	}
	for _, cls := range retryable {
		inj := o.Registry.Counter("faults_injected_total", obs.L("class", cls)).Value()
		rec := o.Registry.Counter("faults_recovered_total", obs.L("class", cls)).Value()
		if inj == 0 {
			t.Errorf("class %s never injected at rate 0.3 — injection site unwired?", cls)
		}
		if rec == 0 {
			t.Errorf("class %s injected %d times but never recovered", cls, inj)
		}
	}
}

// TestExecuteVerifyUnderFaults pins graceful degradation end to end: with
// every class firing at a high rate, the verify flavour must still accept
// all provers.
func TestExecuteVerifyUnderFaults(t *testing.T) {
	r, err := Execute(Spec{
		Chain: ChainAlgorand, Users: 8, Seed: 13,
		Verify: true, Faults: faults.Uniform(0.4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accepted != 8 {
		t.Fatalf("accepted = %d of 8 under faults", r.Accepted)
	}
}
