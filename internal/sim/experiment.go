// Package sim is the evaluation harness: it reproduces the thesis'
// test-suite (§4.3) — N provers arriving sequentially at a handful of
// locations, deploying one contract per area and attaching to existing ones
// — and aggregates the latency and fee samples into the exact tables
// (5.1–5.4) and figures (5.2–5.5) of the evaluation chapter.
package sim

import (
	"fmt"
	"time"

	"agnopol/internal/algorand"
	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/eth"
	"agnopol/internal/faults"
	"agnopol/internal/geo"
	"agnopol/internal/obs"
	"agnopol/internal/olc"
	"agnopol/internal/stats"
)

// Locations are the eight Open Location Codes the thesis deployed contracts
// for (§5.1.2).
var Locations = []string{
	"7H369F4W+Q8", "7H369F4W+Q9", "7H368FRV+FM", "7H368FWV+X6",
	"7H367FWH+9J", "7H368F5R+4V", "7H369FXP+FH", "7H369F2W+3R",
}

// UsersPerContract matches the thesis setup: every contract has four users
// attached, creator included.
const UsersPerContract = core.MaxUsers

// ChainName selects a network preset.
type ChainName string

// The networks of the evaluation chapter.
const (
	ChainRopsten  ChainName = "ropsten"
	ChainGoerli   ChainName = "goerli"
	ChainPolygon  ChainName = "polygon"
	ChainAlgorand ChainName = "algorand"
)

// AllChains lists the networks in the order the tables present them.
var AllChains = []ChainName{ChainGoerli, ChainPolygon, ChainAlgorand}

// NewConnector instantiates a fresh simulated network for an experiment.
func NewConnector(name ChainName, seed uint64) (core.Connector, error) {
	switch name {
	case ChainRopsten:
		return core.NewEVMConnector(eth.NewChain(eth.Ropsten(), seed)), nil
	case ChainGoerli:
		return core.NewEVMConnector(eth.NewChain(eth.Goerli(), seed)), nil
	case ChainPolygon:
		return core.NewEVMConnector(eth.NewChain(eth.PolygonMumbai(), seed)), nil
	case ChainAlgorand:
		return core.NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), seed)), nil
	default:
		return nil, fmt.Errorf("sim: unknown chain %q", name)
	}
}

// Measurement is one user's total interaction time with the contract — the
// quantity the per-user bars of Figs. 5.2–5.5 plot.
type Measurement struct {
	User     int
	OLC      string
	Deployed bool
	Latency  time.Duration
	Fee      chain.Amount
	GasUsed  uint64
}

// Result aggregates one experiment run.
type Result struct {
	Chain ChainName
	Users int

	Measurements []Measurement
	// Deploy and Attach are the split series (seconds).
	DeploySummary stats.Summary
	AttachSummary stats.Summary
	DeployFees    chain.Amount
	AttachFees    chain.Amount
	DeployGas     uint64
	AttachGas     uint64
}

// rewardFor returns a meaningful reward per prover in base units.
func rewardFor(c core.Connector) uint64 {
	if c.Unit().Name == "ALGO" {
		return 100_000 // 0.1 ALGO
	}
	return 1e15 // 0.001 ETH / MATIC
}

// Spec describes one experiment for Execute, the single entry point the
// historical Run* family now wraps. The zero value of every optional field
// selects the historical behaviour: no observability, no verification
// phase, no fault injection.
type Spec struct {
	// Chain selects the network preset (see AllChains).
	Chain ChainName
	// Users is the prover count; must be a multiple of UsersPerContract.
	Users int
	// Seed drives every random stream of the run, fault streams included.
	Seed uint64
	// Obs optionally attaches an observability bundle: chain metrics, VM
	// profiles, pipeline spans, and — when Faults is set — the
	// faults_injected_total / faults_recovered_total counters.
	Obs *obs.Obs
	// Verify adds the funding + verification phase after collection.
	Verify bool
	// Faults optionally attaches a fault plan; the injector is seeded from
	// Seed, so the same (Spec, Seed) is bit-for-bit reproducible. Nil keeps
	// the run on the exact no-fault code path.
	Faults *faults.Plan
}

// Run executes the thesis experiment: users provers in groups of
// UsersPerContract per location, arriving sequentially. Every group's first
// prover deploys the area contract, the rest attach. The verification phase
// is excluded from the measurements, matching §5.1 ("we decided to measure
// only the deploy and attach phases … the verify operation is similar to
// the attachment").
func Run(name ChainName, users int, seed uint64) (*Result, error) {
	return RunObserved(name, users, seed, nil)
}

// RunObserved is Run with an observability bundle attached: the
// connector's chain and the core system are instrumented, and every user
// interaction runs under a sim.user span inside a sim.experiment span.
// A nil bundle reproduces Run exactly.
func RunObserved(name ChainName, users int, seed uint64, o *obs.Obs) (*Result, error) {
	vr, err := Execute(Spec{Chain: name, Users: users, Seed: seed, Obs: o})
	if err != nil {
		return nil, err
	}
	return vr.Result, nil
}

// Execute runs one experiment described by spec and returns the result;
// VerifySummary, VerifyFees and Accepted stay zero unless spec.Verify is
// set. It subsumes Run, RunObserved, RunWithVerify and
// RunWithVerifyObserved, which remain as thin wrappers.
func Execute(spec Spec) (*VerifyResult, error) {
	conn, sys, err := newExperiment(spec)
	if err != nil {
		return nil, err
	}
	labels := []obs.Label{
		obs.L("chain", string(spec.Chain)), obs.L("users", fmt.Sprint(spec.Users))}
	if spec.Verify {
		labels = append(labels, obs.L("verify", "true"))
	}
	if spec.Faults != nil {
		labels = append(labels, obs.L("faults", "true"))
	}
	exSp := sys.TraceScope().Start("sim.experiment", labels...)
	defer exSp.End()

	// The verifier exists before collection starts so its creation cost
	// never leaks into the measured phases (§4.3).
	var verifier *core.Verifier
	if spec.Verify {
		verifier, err = core.NewVerifier(sys)
		if err != nil {
			return nil, err
		}
		if _, err := verifier.EnsureAccount(conn, 100); err != nil {
			return nil, err
		}
	}

	base, stagedUsers, err := collect(spec.Chain, conn, sys, spec.Users)
	if err != nil {
		return nil, err
	}
	out := &VerifyResult{Result: base}
	if !spec.Verify {
		return out, nil
	}

	reward := rewardFor(conn)
	for g := 0; g < spec.Users/UsersPerContract; g++ {
		// All provers of a group staged onto the same contract; fund it
		// once, through the deployer's handle.
		h := stagedUsers[g*UsersPerContract].handle
		if _, err := verifier.FundContract(conn, h, uint64(UsersPerContract)*reward); err != nil {
			return nil, err
		}
	}

	// Verification phase.
	var verifyLat []time.Duration
	for _, s := range stagedUsers {
		ver, err := verifier.VerifyProver(conn, s.handle, s.prover.DID)
		if err != nil {
			return nil, err
		}
		if ver.Accepted {
			out.Accepted++
		}
		verifyLat = append(verifyLat, ver.Op.Latency)
		out.VerifyFees = out.VerifyFees.Add(ver.Op.Fee)
	}
	out.VerifySummary = stats.SummarizeDurations(verifyLat)
	return out, nil
}

// newExperiment validates the grid parameters and builds one run's world:
// a fresh connector and system, instrumented when spec.Obs is non-nil and
// fault-wired when spec.Faults is. Every experiment owns its whole world —
// runs share nothing but the obs bundle — which is what lets RunMatrix fan
// cells out over workers.
func newExperiment(spec Spec) (core.Connector, *core.System, error) {
	if spec.Users%UsersPerContract != 0 {
		return nil, nil, fmt.Errorf("sim: users=%d must be a multiple of %d", spec.Users, UsersPerContract)
	}
	if contracts := spec.Users / UsersPerContract; contracts > len(Locations) {
		return nil, nil, fmt.Errorf("sim: %d contracts exceed the %d thesis locations", contracts, len(Locations))
	}
	conn, err := NewConnector(spec.Chain, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.NewSystem(spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	InstrumentConnector(conn, spec.Obs)
	sys.Instrument(spec.Obs)
	applyFaults(spec, conn, sys)
	return conn, sys, nil
}

// applyFaults wires a spec's fault plan into the freshly built world: one
// injector per run, seeded from the run seed so every fault stream is a
// pure function of (seed, site, sequence) — worker scheduling in RunMatrix
// can never shift a draw. The chain consults the injector at its mempool,
// the off-chain substrates via System, and both connector and actors run
// under the default retry policy. A nil plan is a no-op, leaving the run
// on the exact code path a fault-free build takes.
func applyFaults(spec Spec, conn core.Connector, sys *core.System) {
	if spec.Faults == nil {
		return
	}
	var reg *obs.Registry
	if spec.Obs != nil {
		reg = spec.Obs.Registry
	}
	inj := faults.NewInjector(spec.Faults, spec.Seed, reg)
	switch c := conn.(type) {
	case *core.EVMConnector:
		c.Chain().SetFaults(inj)
	case *core.AlgorandConnector:
		c.Chain().SetFaults(inj)
	}
	conn.SetResilience(faults.DefaultRetry)
	sys.SetResilience(inj, faults.DefaultRetry)
}

// staged pairs a prover with the contract its proof landed on, for phases
// that run after collection (funding, verification).
type staged struct {
	prover *core.Prover
	handle *core.Handle
}

// userFault, when set by a test, injects a failure at the start of a
// user's interaction. It exists solely for the span-leak regression test.
var userFault func(seq int) error

// collect runs the shared per-user phase of the experiment: witnesses and
// provers are created up front (§4.3: generation must not affect the
// delay times), then every user uploads a report, obtains a location
// proof and submits it on-chain — all deployers first, then the
// attachers, sequentially, matching the thesis script. Run and
// RunWithVerify both build on this one loop, so instrumentation covers
// the verify flavour too. The returned staging slice is indexed by
// prover, in creation order.
func collect(name ChainName, conn core.Connector, sys *core.System, users int) (*Result, []staged, error) {
	contracts := users / UsersPerContract

	// One witness per location, standing at the cell center.
	witnesses := make([]*core.Witness, contracts)
	centers := make([]geo.LatLng, contracts)
	for i := 0; i < contracts; i++ {
		area, err := olc.Decode(Locations[i])
		if err != nil {
			return nil, nil, fmt.Errorf("sim: location %q: %w", Locations[i], err)
		}
		lat, lng := area.Center()
		centers[i] = geo.LatLng{Lat: lat, Lng: lng}
		w, err := core.NewWitness(sys, centers[i])
		if err != nil {
			return nil, nil, err
		}
		witnesses[i] = w
	}

	res := &Result{Chain: name, Users: users}
	reward := rewardFor(conn)
	var deployLat, attachLat []time.Duration

	provers := make([]*core.Prover, users)
	for u := 0; u < users; u++ {
		g := u / UsersPerContract
		p, err := core.NewProver(sys, centers[g])
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.EnsureAccount(conn, 10); err != nil {
			return nil, nil, err
		}
		provers[u] = p
	}

	// The thesis script runs all deployers first, then the attachers (the
	// figures' first N/4 bars are the deploys), all sequentially.
	order := make([]int, 0, users)
	for u := 0; u < users; u += UsersPerContract {
		order = append(order, u)
	}
	for u := 0; u < users; u++ {
		if u%UsersPerContract != 0 {
			order = append(order, u)
		}
	}

	stagedUsers := make([]staged, users)
	for seq, u := range order {
		g := u / UsersPerContract
		p := provers[u]
		sub, olcCode, err := submitUser(sys.TraceScope(), conn, p, witnesses[g], seq, u, reward)
		if err != nil {
			return nil, nil, err
		}
		stagedUsers[u] = staged{prover: p, handle: sub.Handle}
		m := Measurement{
			User:     seq,
			OLC:      olcCode,
			Deployed: sub.Deployed,
			Latency:  sub.Op.Latency,
			Fee:      sub.Op.Fee,
			GasUsed:  sub.Op.GasUsed,
		}
		res.Measurements = append(res.Measurements, m)
		if sub.Deployed {
			deployLat = append(deployLat, m.Latency)
			res.DeployFees = res.DeployFees.Add(m.Fee)
			res.DeployGas += m.GasUsed
		} else {
			attachLat = append(attachLat, m.Latency)
			res.AttachFees = res.AttachFees.Add(m.Fee)
			res.AttachGas += m.GasUsed
		}
	}
	res.DeploySummary = stats.SummarizeDurations(deployLat)
	res.AttachSummary = stats.SummarizeDurations(attachLat)
	return res, stagedUsers, nil
}

// submitUser walks one prover through upload → proof request → on-chain
// submission under a sim.user span. The span must end on every exit path:
// an early error return that left it open would wedge the scope's stack
// on a dead span, mis-parenting every later span and keeping this one out
// of the ring buffer forever. Failures are recorded on the span as an
// error label.
func submitUser(sc *obs.Scope, conn core.Connector, p *core.Prover, w *core.Witness, seq, u int, reward uint64) (sub *core.SubmissionResult, olcCode string, err error) {
	uSp := sc.Start("sim.user", obs.L("user", fmt.Sprint(seq)))
	defer func() {
		if err != nil {
			uSp.Label("error", err.Error())
		}
		uSp.End()
	}()
	if userFault != nil {
		if ferr := userFault(seq); ferr != nil {
			return nil, "", fmt.Errorf("sim: user %d: %w", u, ferr)
		}
	}
	cid, err := p.UploadReport(core.Report{
		Title:       fmt.Sprintf("report-%d", u),
		Description: "environment issue report",
		Category:    "environment",
	})
	if err != nil {
		return nil, "", err
	}
	acct, ok := p.Account(conn)
	if !ok {
		return nil, "", fmt.Errorf("sim: user %d has no account on %s", u, conn.Name())
	}
	proof, err := p.RequestProofResilient(conn, w, cid, acct.Address())
	if err != nil {
		return nil, "", fmt.Errorf("sim: user %d proof: %w", u, err)
	}
	sub, err = p.SubmitProof(conn, proof, reward)
	if err != nil {
		return nil, "", fmt.Errorf("sim: user %d submit: %w", u, err)
	}
	return sub, proof.Request.OLC, nil
}

// VerifyResult extends Run with the verification phase the paper excluded
// from its measurements (§5.1: "the verify operation is similar to the
// attachment since it is a basic API call to the contract") — RunWithVerify
// measures it so that claim is checkable.
type VerifyResult struct {
	*Result
	VerifySummary stats.Summary
	VerifyFees    chain.Amount
	Accepted      int
}

// RunWithVerify runs the standard experiment, then has a verifier fund
// every contract and validate every prover, measuring the verify-operation
// latency.
func RunWithVerify(name ChainName, users int, seed uint64) (*VerifyResult, error) {
	return RunWithVerifyObserved(name, users, seed, nil)
}

// RunWithVerifyObserved is RunWithVerify with an observability bundle
// attached. The collection phase is the exact code path RunObserved uses,
// so the verify flavour gets the same spans and histograms, plus the
// pol.verify instrumentation of the verification phase.
func RunWithVerifyObserved(name ChainName, users int, seed uint64, o *obs.Obs) (*VerifyResult, error) {
	return Execute(Spec{Chain: name, Users: users, Seed: seed, Obs: o, Verify: true})
}
